//! **Figure 6a** — flux kernel: cumulative optimization speed-ups.
//!
//! Paper (Mesh-C, 10 cores / 20 threads): threading with METIS
//! partitioning, + AoS data structures (+40%), + SIMD (+40%), + software
//! prefetch (+15%) → 20.6× over the sequential baseline.
//!
//! Two result sets are reported:
//! * **host-measured** — the single-thread layout/SIMD/prefetch variants
//!   run for real on this container (1 core), so those ratios are
//!   genuine measurements of this implementation;
//! * **modeled (paper machine)** — the cumulative stack on the modeled
//!   10-core Xeon E5-2690v2, with threading effects from the *real*
//!   owner-writes plan (20-thread METIS partition of this mesh).

use fun3d_bench::{emit, fmt_x, measure, KernelFixture};
use fun3d_core::{counts, flux};
use fun3d_core::geom::NodeSoa;
use fun3d_machine::{kernels, EdgeLoopCosts, MachineSpec};
use fun3d_mesh::generator::MeshPreset;
use fun3d_partition::{
    partition_graph, EdgeTiling, MultilevelConfig, OwnerWritesPlan, TileQuality, TilingConfig,
};
use fun3d_util::report::{fmt_g, Table};

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let fix = KernelFixture::new(cli.mesh);
    let soa = NodeSoa::from_aos(&fix.node);
    let beta = fix.cond.beta;
    let n4 = fix.node.n * 4;
    let mut res = vec![0.0; n4];

    // ---- host measurements (serial variants) -----------------------
    let t_soa = measure(cli.reps, || {
        res.iter_mut().for_each(|x| *x = 0.0);
        flux::serial_soa(&fix.geom, &soa, beta, &mut res);
    });
    let t_aos = measure(cli.reps, || {
        res.iter_mut().for_each(|x| *x = 0.0);
        flux::serial_aos(&fix.geom, &fix.node, beta, &mut res);
    });
    let t_simd = measure(cli.reps, || {
        res.iter_mut().for_each(|x| *x = 0.0);
        flux::serial_aos_simd(&fix.geom, &fix.node, beta, &mut res);
    });
    let t_pref = measure(cli.reps, || {
        res.iter_mut().for_each(|x| *x = 0.0);
        flux::serial_aos_simd_prefetch(&fix.geom, &fix.node, beta, &mut res);
    });
    // Tiled scratch-pad staging, sized for this host's L2, running on
    // the tile-ordered geometry (built once, outside the timed region).
    let tiling = EdgeTiling::build(
        fix.mesh.nvertices(),
        &fix.geom.edges,
        &TilingConfig::for_machine(&MachineSpec::host()),
    );
    let tgeom = fun3d_core::TiledGeom::new(&tiling, &fix.geom);
    let texec = flux::TileExec::auto(&MachineSpec::host(), fix.mesh.nvertices());
    let t_tiled = measure(cli.reps, || {
        res.iter_mut().for_each(|x| *x = 0.0);
        flux::tiled(&tiling, &tgeom, &fix.node, beta, texec, &mut res);
    });

    let mut host = Table::new(
        "Fig. 6a (host-measured, serial): single-thread flux variants",
        &["variant", "seconds", "speedup vs SoA", "paper single-thread factor"],
    );
    host.row(&["scalar SoA (baseline)".into(), fmt_g(t_soa), fmt_x(1.0), "1.00x".into()]);
    host.row(&[
        "+ AoS data structures".into(),
        fmt_g(t_aos),
        fmt_x(t_soa / t_aos),
        "1.40x".into(),
    ]);
    host.row(&[
        "+ SIMD (4-edge batch)".into(),
        fmt_g(t_simd),
        fmt_x(t_soa / t_simd),
        "1.96x".into(),
    ]);
    host.row(&[
        "+ software prefetch".into(),
        fmt_g(t_pref),
        fmt_x(t_soa / t_pref),
        "2.25x".into(),
    ]);
    host.row(&[
        format!("tiled ({texec:?} exec)"),
        fmt_g(t_tiled),
        fmt_x(t_soa / t_tiled),
        "-".into(),
    ]);
    emit("fig6a_flux_opts_host", &host);
    println!("tile quality: {}", TileQuality::of(&tiling).summary());

    // ---- modeled cumulative stack on the paper machine -------------
    let machine = MachineSpec::xeon_e5_2690v2();
    let costs = EdgeLoopCosts::default();
    let threads = machine.cores * machine.smt; // 20 threads
    let graph = fun3d_mesh::Graph::from_edges(fix.mesh.nvertices(), &fix.geom.edges);
    let part = partition_graph(&graph, threads, &MultilevelConfig::default());
    let plan = OwnerWritesPlan::build(&fix.geom.edges, &part, threads);
    let per_thread: Vec<usize> = plan.edges_of.iter().map(Vec::len).collect();
    let serial = vec![fix.geom.nedges()];

    let t0 = kernels::edge_loop_time(&machine, &serial, costs.scalar_soa, costs.dram_bytes_per_edge, 0.0);
    let stack = [
        ("scalar SoA serial (baseline)", &serial, costs.scalar_soa),
        ("+ threading (METIS, 20 thr)", &per_thread, costs.scalar_soa),
        ("+ AoS data structures", &per_thread, costs.scalar_aos),
        ("+ SIMD (4-edge batch)", &per_thread, costs.simd),
        ("+ software prefetch", &per_thread, costs.simd_prefetch),
    ];
    let mut model = Table::new(
        "Fig. 6a (modeled Xeon E5-2690v2): cumulative flux optimizations",
        &["configuration", "modeled seconds", "speedup"],
    );
    for (name, loads, cyc) in stack {
        let t = kernels::edge_loop_time(&machine, loads, cyc, costs.dram_bytes_per_edge, 0.0);
        model.row(&[name.to_string(), fmt_g(t), fmt_x(t0 / t)]);
    }
    // Tiled staging: same SIMD batch compute, but DRAM traffic shrunk by
    // the tiling's *measured* reuse (ratio of the analytic tiled byte
    // model to the streaming byte model on this mesh).
    let ne = fix.geom.nedges();
    let byte_ratio = counts::flux_tiled(ne, tiling.vertex_slots()).bytes() as f64
        / counts::flux(ne).bytes() as f64;
    let t_tl = kernels::edge_loop_time(
        &machine,
        &per_thread,
        costs.simd,
        costs.dram_bytes_per_edge * byte_ratio,
        0.0,
    );
    model.row(&[
        "+ tiled scratch-pad staging".to_string(),
        fmt_g(t_tl),
        fmt_x(t0 / t_tl),
    ]);
    emit("fig6a_flux_opts_model", &model);
    println!(
        "\npaper: 20.6x total at 10 cores / 20 threads; replication overhead of this plan: {:.1}%",
        100.0 * plan.replication_overhead()
    );
}
