//! **Figure 8b** — kernel-wise speedups inside the optimized
//! application at 10 cores / 20 threads.
//!
//! Paper: flux ≈ 20.6×, gradient and Jacobian near-linear, ILU 9.4×,
//! TRSV 3.2× (bandwidth-bound), vector primitives in between.

use fun3d_bench::model::model_speedups;
use fun3d_bench::{emit, KernelFixture};
use fun3d_machine::MachineSpec;
use fun3d_mesh::generator::MeshPreset;
use fun3d_util::report::Table;

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let fix = KernelFixture::new(cli.mesh);
    let machine = MachineSpec::xeon_e5_2690v2();
    let s = model_speedups(&fix, &machine, machine.cores);

    let mut table = Table::new(
        "Fig. 8b: kernel speedups at 10 cores / 20 threads (modeled)",
        &["kernel", "speedup", "paper"],
    );
    table.row(&["flux".into(), format!("{:.1}x", s.flux), "~20.6x".into()]);
    table.row(&["gradient".into(), format!("{:.1}x", s.gradient), "near-linear".into()]);
    table.row(&["jacobian".into(), format!("{:.1}x", s.jacobian), "near-linear".into()]);
    table.row(&["ilu".into(), format!("{:.1}x", s.ilu), "9.4x".into()]);
    table.row(&["trsv".into(), format!("{:.1}x", s.trsv), "3.2x".into()]);
    table.row(&["vector primitives".into(), format!("{:.1}x", s.other), "bandwidth-bound".into()]);
    emit("fig8b_kernel_speedups", &table);
}
