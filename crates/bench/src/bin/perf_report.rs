//! **perf_report** — one-shot telemetry report of a full application run.
//!
//! Runs the ΨNKS solve with telemetry at full detail and emits, in one
//! invocation, the evidence the paper's figures are built from:
//!
//! * a per-kernel profile with analytic bytes/flops, achieved GB/s and
//!   arithmetic intensity against the machine's STREAM number (the
//!   Fig. 6 / Table 3 comparison);
//! * a per-thread utilization / load-imbalance table from worker busy
//!   spans (the shared-memory scaling story);
//! * the ΨTC convergence history (residual, Δt, GMRES iterations per
//!   step);
//! * machine-readable artifacts under `target/experiments/`: a JSON run
//!   summary (`perf_report.json`) and a Chrome trace-event timeline
//!   (`perf_report.trace.json`) loadable in Perfetto / `chrome://tracing`.
//!
//! Usage: `perf_report [--mesh <preset>] [--threads <n>] [--check <file>]`
//! (`--check` parses an existing JSON artifact and exits — used by
//! `scripts/verify.sh` to keep the artifacts machine-readable).

use fun3d_bench::build_mesh;
use fun3d_core::{Fun3dApp, FlowConditions, OptConfig};
use fun3d_machine::MachineSpec;
use fun3d_mesh::generator::MeshPreset;
use fun3d_solver::ptc::PtcConfig;
use fun3d_util::report::{experiments_dir, fmt_g, write_json, Table};
use fun3d_util::telemetry::profile as profile_fmt;
use fun3d_util::telemetry::roofline::{self, Deviation, Envelope};
use fun3d_util::telemetry::sampler::{period_from_env, SampleProfile};
use fun3d_util::telemetry::flight;
use fun3d_util::telemetry::{self, json::Json, trace, Level, Sampler, Snapshot};

struct Args {
    mesh: MeshPreset,
    threads: usize,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        mesh: MeshPreset::Small,
        threads: 2,
        check: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--mesh" => {
                i += 1;
                out.mesh = MeshPreset::parse(&args[i])
                    .unwrap_or_else(|| panic!("unknown mesh preset '{}'", args[i]));
            }
            "--threads" => {
                i += 1;
                out.threads = args[i].parse().expect("--threads takes an integer");
            }
            "--check" => {
                i += 1;
                out.check = Some(args[i].clone());
            }
            "--help" | "-h" => {
                eprintln!("options: --mesh <tiny|small|medium|large> --threads <n> --check <json>");
                std::process::exit(0);
            }
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    out
}

/// `--check` mode: parse the artifact, verify the summary invariants,
/// exit 0/1. This is the rot guard verify.sh runs.
fn check_artifact(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("check failed: cannot read {path}: {e}");
        std::process::exit(1);
    });
    if path.ends_with(".folded") {
        // Folded flamegraph text from the sampler.
        match profile_fmt::check_folded(&text) {
            Ok(n) => {
                println!("{path}: OK ({n} folded stacks)");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("check failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("check failed: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    if doc.get("$schema").is_some() {
        // Speedscope profile from the sampler.
        match profile_fmt::check_speedscope(&doc) {
            Ok(n) => {
                println!("{path}: OK ({n} speedscope profiles)");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("check failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut problems = Vec::new();
    if let Some(events) = doc.get("traceEvents") {
        // Chrome trace form: every event needs a name, phase, pid, tid.
        match events.as_arr() {
            None => problems.push("'traceEvents' is not an array".to_string()),
            Some(evs) => {
                for e in evs {
                    if e.get("name").and_then(Json::as_str).is_none()
                        || e.get("ph").and_then(Json::as_str).is_none()
                        || e.get("pid").and_then(Json::as_f64).is_none()
                        || e.get("tid").and_then(Json::as_f64).is_none()
                    {
                        problems.push("malformed trace event".to_string());
                        break;
                    }
                }
            }
        }
        if problems.is_empty() {
            println!("{path}: OK ({} trace events)", doc.get("traceEvents").and_then(Json::as_arr).map_or(0, <[Json]>::len));
            std::process::exit(0);
        }
        for p in &problems {
            eprintln!("check failed: {p}");
        }
        std::process::exit(1);
    }
    for key in ["machine", "run", "kernels", "roofline", "threads", "convergence", "exec"] {
        if doc.get(key).is_none() {
            problems.push(format!("missing key '{key}'"));
        }
    }
    if let Some(exec) = doc.get("exec") {
        // The scheme that actually ran must be concrete (Auto resolved).
        match exec.get("mode").and_then(Json::as_str) {
            Some("serial" | "per-op" | "team") => {}
            _ => problems.push("'exec.mode' missing or not a concrete scheme".to_string()),
        }
        if exec.get("solve_id").and_then(Json::as_f64).is_none() {
            problems.push("'exec.solve_id' missing".to_string());
        }
    }
    if let Some(kernels) = doc.get("kernels").and_then(Json::as_arr) {
        if kernels.is_empty() {
            problems.push("'kernels' array is empty".to_string());
        }
        for k in kernels {
            if k.get("name").and_then(Json::as_str).is_none() {
                problems.push("kernel entry without 'name'".to_string());
            }
        }
    }
    if let Some(roof) = doc.get("roofline") {
        match roof.get("rows").and_then(Json::as_arr) {
            None => problems.push("'roofline.rows' is not an array".to_string()),
            Some(rows) => {
                if rows.is_empty() {
                    problems.push("'roofline.rows' is empty".to_string());
                }
                for r in rows {
                    if r.get("name").and_then(Json::as_str).is_none()
                        || r.get("ratio").and_then(Json::as_f64).is_none()
                    {
                        problems.push("roofline row without name/ratio".to_string());
                        break;
                    }
                }
            }
        }
    }
    if let Some(conv) = doc.get("convergence").and_then(|c| c.get("residual")) {
        if conv.as_arr().map_or(true, |a| a.is_empty()) {
            problems.push("'convergence.residual' is empty".to_string());
        }
    }
    if problems.is_empty() {
        println!("{path}: OK");
        std::process::exit(0);
    }
    for p in &problems {
        eprintln!("check failed: {p}");
    }
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check {
        check_artifact(path);
    }

    // Full span detail unless the user explicitly chose a level.
    if std::env::var("FUN3D_TELEMETRY").is_err() {
        telemetry::set_level(Level::Full);
    }

    let machine = MachineSpec::xeon_e5_2690v2();
    let mesh = build_mesh(args.mesh);
    let mut app = Fun3dApp::new(
        mesh,
        FlowConditions::default(),
        OptConfig::optimized(args.threads),
    );
    let nedges = app.geom.nedges();
    let nvertices = app.mesh.nvertices();
    // At full detail every thread publishes its open-span path, so the
    // statistical profiler can ride along for free.
    let sampler = if telemetry::level() == Level::Full {
        Some(Sampler::start(period_from_env()))
    } else {
        None
    };
    let (_, stats) = app.run(&PtcConfig {
        dt0: 2.0,
        rtol: 1e-8,
        max_steps: 100,
        ..Default::default()
    });
    let sample_profile: Option<SampleProfile> = sampler.map(Sampler::stop);
    assert!(stats.converged, "run failed to converge");

    let prof = app.profile();
    let run_secs = prof.run_seconds();
    let snap = telemetry::snapshot();
    let counters = snap.merged_counters();

    // ---- (a) per-kernel profile with achieved GB/s and intensity ----
    let mut kernel_table = Table::new(
        &format!(
            "perf_report: kernel profile ({}, {} threads, {} edges)",
            args.mesh.name(),
            args.threads,
            nedges
        ),
        &[
            "kernel", "seconds", "% of run", "calls", "GB moved", "achieved GB/s",
            "% of STREAM", "flop/byte",
        ],
    );
    let mut kernels_json = Vec::new();
    for (name, c) in counters.entries() {
        let secs = prof.seconds(name);
        let gbs = c.achieved_gbs(secs);
        kernel_table.row(&[
            name.to_string(),
            fmt_g(secs),
            format!("{:.1}%", 100.0 * secs / run_secs.max(1e-300)),
            c.calls.to_string(),
            fmt_g(c.bytes() as f64 / 1e9),
            if secs > 0.0 { fmt_g(gbs) } else { "-".to_string() },
            if secs > 0.0 {
                format!("{:.0}%", 100.0 * gbs / machine.stream_gbs)
            } else {
                "-".to_string()
            },
            fmt_g(c.arithmetic_intensity()),
        ]);
        kernels_json.push(Json::obj(vec![
            ("name", Json::str(*name)),
            ("seconds", Json::num(secs)),
            ("calls", Json::num(c.calls as f64)),
            ("items", Json::num(c.items as f64)),
            ("bytes_read", Json::num(c.bytes_read as f64)),
            ("bytes_written", Json::num(c.bytes_written as f64)),
            ("flops", Json::num(c.flops as f64)),
            ("achieved_gbs", Json::num(gbs)),
            ("stream_fraction", Json::num(gbs / machine.stream_gbs)),
            ("arithmetic_intensity", Json::num(c.arithmetic_intensity())),
        ]));
    }
    print!("{}", kernel_table.render());
    println!();

    // ---- (a') statistical profile: top self-time spans ----
    let mut profile_json: Option<Json> = None;
    if let Some(sp) = &sample_profile {
        let times = sp.kernel_times();
        let busy = sp.busy_samples();
        let mut profile_table = Table::new(
            &format!(
                "perf_report: sampled profile ({} ticks @ {}µs, {} busy samples, {} missed)",
                sp.ticks,
                sp.period_ns / 1_000,
                busy,
                sp.missed
            ),
            &["span", "self s", "total s", "self samples", "% busy"],
        );
        let mut kernels = Vec::new();
        for k in &times {
            profile_table.row(&[
                k.name.to_string(),
                fmt_g(k.self_ns as f64 * 1e-9),
                fmt_g(k.total_ns as f64 * 1e-9),
                k.self_samples.to_string(),
                format!("{:.1}%", 100.0 * k.self_samples as f64 / busy.max(1) as f64),
            ]);
            kernels.push(Json::obj(vec![
                ("name", Json::str(k.name)),
                ("self_seconds", Json::num(k.self_ns as f64 * 1e-9)),
                ("total_seconds", Json::num(k.total_ns as f64 * 1e-9)),
                ("self_samples", Json::num(k.self_samples as f64)),
            ]));
        }
        if times.is_empty() {
            println!("(sampler caught no busy samples — run too short for the period)\n");
        } else {
            print!("{}", profile_table.render());
            println!();
        }
        profile_json = Some(Json::obj(vec![
            ("period_ns", Json::num(sp.period_ns as f64)),
            ("ticks", Json::num(sp.ticks as f64)),
            ("missed", Json::num(sp.missed as f64)),
            ("truncated", Json::num(sp.truncated as f64)),
            ("busy_samples", Json::num(busy as f64)),
            ("kernels", Json::Arr(kernels)),
        ]));
    }

    // ---- (a'') measured-vs-model roofline validation ----
    // Kernel seconds come from the sampled self-time when the profiler
    // caught enough samples to trust (statistically exact attribution,
    // no double-count of nested spans), else from the span timers.
    const MIN_SELF_SAMPLES: u64 = 5;
    let envelope = Envelope {
        stream_gbs: machine.stream_gbs,
        peak_gflops: machine.peak_gflops(),
    };
    let tolerance = roofline::tolerance_from_env(roofline::DEFAULT_TOLERANCE);
    let mut roofline_input = Vec::new();
    let source_of = |name: &str| -> (&'static str, f64) {
        if let Some(sp) = &sample_profile {
            if let Some(k) = sp
                .kernel_times()
                .into_iter()
                .find(|k| k.name == name && k.self_samples >= MIN_SELF_SAMPLES)
            {
                return ("sampled", k.self_ns as f64 * 1e-9);
            }
        }
        ("timer", prof.seconds(name))
    };
    let mut sources: Vec<(String, &'static str)> = Vec::new();
    for (name, c) in counters.entries() {
        let (source, secs) = source_of(name);
        sources.push((name.to_string(), source));
        roofline_input.push((*name, secs, *c));
    }
    let rows = roofline::validate(&roofline_input, &envelope, tolerance);
    let mut roofline_table = Table::new(
        &format!(
            "perf_report: measured vs model (ridge {:.1} flop/B, tolerance {tolerance}x)",
            envelope.ridge_flops_per_byte()
        ),
        &["kernel", "bound", "measured s", "model s", "ratio", "GB/s", "source", "flag"],
    );
    let mut roofline_json = Vec::new();
    for r in &rows {
        let source = sources
            .iter()
            .find(|(n, _)| *n == r.name)
            .map_or("timer", |(_, s)| *s);
        let flag = match r.deviation {
            Some(Deviation::Slow) => "SLOW",
            // Expected on cache-resident verification meshes: the
            // compulsory-traffic model overcounts DRAM bytes.
            Some(Deviation::Fast) => "fast (cache-resident?)",
            None => "",
        };
        roofline_table.row(&[
            r.name.clone(),
            r.bound.label().to_string(),
            fmt_g(r.seconds),
            fmt_g(r.model_seconds),
            format!("{:.2}", r.ratio),
            fmt_g(r.achieved_gbs),
            source.to_string(),
            flag.to_string(),
        ]);
        roofline_json.push(Json::obj(vec![
            ("name", Json::str(r.name.as_str())),
            ("bound", Json::str(r.bound.label())),
            ("seconds", Json::num(r.seconds)),
            ("model_seconds", Json::num(r.model_seconds)),
            ("ratio", Json::num(r.ratio)),
            ("achieved_gbs", Json::num(r.achieved_gbs)),
            ("achieved_gflops", Json::num(r.achieved_gflops)),
            ("source", Json::str(source)),
            (
                "deviation",
                match r.deviation {
                    Some(Deviation::Slow) => Json::str("slow"),
                    Some(Deviation::Fast) => Json::str("fast"),
                    None => Json::Null,
                },
            ),
        ]));
    }
    let slow_flags = rows
        .iter()
        .filter(|r| r.deviation == Some(Deviation::Slow))
        .count();
    print!("{}", roofline_table.render());
    if slow_flags > 0 {
        println!(
            "WARNING: {slow_flags} kernel(s) more than {tolerance}x off the model floor — \
             the traffic model is missing something (latency, imbalance, false sharing)"
        );
    }
    println!();

    // ---- (b) per-thread utilization / load imbalance ----
    let busy = snap.per_thread_span_seconds("pool.region");
    let mut thread_table = Table::new(
        "perf_report: worker utilization (pool.region busy spans)",
        &["thread", "busy s", "utilization", "regions"],
    );
    let mut threads_json = Vec::new();
    let max_busy = busy.iter().map(|(_, s, _)| *s).fold(0.0f64, f64::max);
    let mean_busy = if busy.is_empty() {
        0.0
    } else {
        busy.iter().map(|(_, s, _)| *s).sum::<f64>() / busy.len() as f64
    };
    for (label, secs, n) in &busy {
        thread_table.row(&[
            label.clone(),
            fmt_g(*secs),
            format!("{:.1}%", 100.0 * secs / run_secs.max(1e-300)),
            n.to_string(),
        ]);
        threads_json.push(Json::obj(vec![
            ("label", Json::str(label.as_str())),
            ("busy_seconds", Json::num(*secs)),
            ("regions", Json::num(*n as f64)),
        ]));
    }
    // load imbalance: max/mean busy time across workers (1.0 = perfect)
    let imbalance = if mean_busy > 0.0 { max_busy / mean_busy } else { 1.0 };
    if busy.is_empty() {
        println!("(no worker spans recorded — run with FUN3D_TELEMETRY=spans or full)\n");
    } else {
        print!("{}", thread_table.render());
        println!("load imbalance (max/mean busy): {imbalance:.3}\n");
    }

    // ---- (b') synchronization cost: region launches + barriers ----
    // The persistent-region work is judged by exactly these two numbers:
    // how many fork-join region launches the run needed, and how many
    // barrier phases replaced them inside persistent regions.
    let region_launches = counters.get("pool.launch").map_or(0, |c| c.calls);
    let barrier_crossings = counters.get("barrier.phase").map_or(0, |c| c.calls);
    let regions_per_linear = region_launches as f64 / stats.linear_iters.max(1) as f64;
    println!(
        "synchronization: {region_launches} region launches, {barrier_crossings} barrier \
         crossings, {regions_per_linear:.2} regions per linear iteration\n"
    );

    // ---- (c) convergence history ----
    let residual = snap.series("ptc.residual");
    let dts = snap.series("ptc.dt");
    let gmres_iters = snap.series("ptc.gmres_iters");
    let mut conv_table = Table::new(
        "perf_report: PTC convergence history",
        &["step", "residual", "dt", "gmres iters"],
    );
    for (i, (step, res)) in residual.iter().enumerate() {
        conv_table.row(&[
            format!("{step:.0}"),
            fmt_g(*res),
            dts.get(i).map(|(_, v)| fmt_g(*v)).unwrap_or_default(),
            gmres_iters
                .get(i)
                .map(|(_, v)| format!("{v:.0}"))
                .unwrap_or_default(),
        ]);
    }
    print!("{}", conv_table.render());
    println!(
        "\nrun: {} time steps, {} linear iterations, {:.3} s wall",
        stats.time_steps, stats.linear_iters, run_secs
    );

    // ---- (c') executed scheme + policy evidence (flight recorder) ----
    // `stats.exec` is the scheme the last linear solve actually ran;
    // under `ExecMode::Auto` the flight log holds the policy decision
    // (modeled serial/parallel seconds, crossover) and the sync-cost
    // calibration that produced it — the audit trail for WHY that
    // scheme ran, not just which.
    let flog = flight::snapshot();
    let mut policy_json = Json::Null;
    let mut probe_json = Json::Null;
    for e in &flog.events {
        match e.kind {
            flight::EventKind::PolicyDecision {
                chosen,
                unknowns,
                nt,
                serial_s,
                parallel_s,
                crossover,
            } if e.solve == stats.solve_id => {
                policy_json = Json::obj(vec![
                    ("chosen", Json::str(chosen.name())),
                    ("unknowns", Json::num(unknowns as f64)),
                    ("nt", Json::num(nt as f64)),
                    ("serial_s", flight::json_f64(serial_s)),
                    ("parallel_s", flight::json_f64(parallel_s)),
                    (
                        "crossover_unknowns",
                        if crossover == flight::NO_CROSSOVER {
                            Json::Null
                        } else {
                            Json::num(crossover as f64)
                        },
                    ),
                ]);
            }
            flight::EventKind::SyncProbe {
                pool_size,
                region_launch_s,
                barrier_phase_s,
            } => {
                probe_json = Json::obj(vec![
                    ("pool_size", Json::num(pool_size as f64)),
                    ("region_launch_s", flight::json_f64(region_launch_s)),
                    ("barrier_phase_s", flight::json_f64(barrier_phase_s)),
                ]);
            }
            _ => {}
        }
    }
    println!(
        "execution: scheme '{}' ran (solve {}, policy decision {}, sync probe {})",
        stats.exec,
        stats.solve_id,
        if matches!(policy_json, Json::Null) { "absent" } else { "recorded" },
        if matches!(probe_json, Json::Null) { "absent" } else { "recorded" },
    );
    let exec_json = Json::obj(vec![
        ("mode", Json::str(stats.exec)),
        ("solve_id", Json::num(stats.solve_id as f64)),
        ("policy", policy_json),
        ("sync_probe", probe_json),
    ]);

    // ---- (d) machine-readable artifacts ----
    let dropped = snap.dropped_spans();
    if dropped > 0 {
        println!("note: {dropped} spans lost to ring wraparound (raise FUN3D_TELEMETRY_RING)");
    }
    let summary = Json::obj(vec![
        (
            "machine",
            Json::obj(vec![
                ("name", Json::str(machine.name)),
                ("stream_gbs", Json::num(machine.stream_gbs)),
                ("peak_gflops", Json::num(machine.peak_gflops())),
            ]),
        ),
        (
            "run",
            Json::obj(vec![
                ("mesh", Json::str(args.mesh.name())),
                ("threads", Json::num(args.threads as f64)),
                ("edges", Json::num(nedges as f64)),
                ("vertices", Json::num(nvertices as f64)),
                ("wall_seconds", Json::num(run_secs)),
                ("time_steps", Json::num(stats.time_steps as f64)),
                ("linear_iters", Json::num(stats.linear_iters as f64)),
                ("converged", Json::Bool(stats.converged)),
                ("load_imbalance", Json::num(imbalance)),
                ("region_launches", Json::num(region_launches as f64)),
                ("barrier_crossings", Json::num(barrier_crossings as f64)),
                ("regions_per_linear_iter", Json::num(regions_per_linear)),
                ("dropped_spans", Json::num(dropped as f64)),
                (
                    "telemetry_level",
                    Json::str(format!("{:?}", telemetry::level())),
                ),
            ]),
        ),
        ("exec", exec_json),
        ("kernels", Json::Arr(kernels_json)),
        (
            "roofline",
            Json::obj(vec![
                ("stream_gbs", Json::num(envelope.stream_gbs)),
                ("peak_gflops", Json::num(envelope.peak_gflops)),
                (
                    "ridge_flops_per_byte",
                    Json::num(envelope.ridge_flops_per_byte()),
                ),
                ("tolerance", Json::num(tolerance)),
                ("rows", Json::Arr(roofline_json)),
            ]),
        ),
        ("profile", profile_json.unwrap_or(Json::Null)),
        ("threads", Json::Arr(threads_json)),
        (
            "convergence",
            Json::obj(vec![
                (
                    "residual",
                    Json::Arr(residual.iter().map(|(_, y)| Json::num(*y)).collect()),
                ),
                (
                    "dt",
                    Json::Arr(dts.iter().map(|(_, y)| Json::num(*y)).collect()),
                ),
                (
                    "gmres_iters",
                    Json::Arr(gmres_iters.iter().map(|(_, y)| Json::num(*y)).collect()),
                ),
            ]),
        ),
    ]);
    let dir = experiments_dir();
    match write_json(&dir, "perf_report", &summary) {
        Ok(p) => println!("[json summary written to {}]", p.display()),
        Err(e) => eprintln!("warning: could not write json summary: {e}"),
    }
    match write_trace(&dir, &snap) {
        Ok(p) => println!("[chrome trace written to {} — open in Perfetto]", p.display()),
        Err(e) => eprintln!("warning: could not write trace: {e}"),
    }
    if let Some(sp) = &sample_profile {
        let folded_path = dir.join("perf_report.folded");
        match std::fs::write(&folded_path, profile_fmt::folded(sp)) {
            Ok(()) => println!(
                "[folded stacks written to {} — flamegraph.pl/inferno input]",
                folded_path.display()
            ),
            Err(e) => eprintln!("warning: could not write folded stacks: {e}"),
        }
        let scope = profile_fmt::speedscope(
            sp,
            &format!("perf_report {} {}t", args.mesh.name(), args.threads),
        );
        match write_json(&dir, "perf_report.speedscope", &scope) {
            Ok(p) => println!("[speedscope profile written to {} — open at speedscope.app]", p.display()),
            Err(e) => eprintln!("warning: could not write speedscope profile: {e}"),
        }
    }
}

fn write_trace(dir: &std::path::Path, snap: &Snapshot) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("perf_report.trace.json");
    std::fs::write(&path, trace::render_chrome_trace(snap))?;
    Ok(path)
}
