//! **metrics_view** — renders a live-metrics snapshot as tables, and
//! can watch a running service.
//!
//! The source is either a file holding the strict-JSON snapshot
//! (`fun3d.metrics.v1`, as written by `{"cmd":"stats"}`'s `metrics`
//! field or the `--metrics-socket` `json` reply) or the metrics socket
//! itself (`--socket PATH`): connect, send one line (`json` or, with
//! `--prom`, `prom`), read the payload to EOF.
//!
//! * default: header plus counter/gauge and histogram tables (count,
//!   p50/p90/p99/max/mean in ms);
//! * `--check`: strictly validate — [`metrics::check_snapshot`] for
//!   JSON, [`metrics::check_prometheus`] for `--prom` — and exit 0/1;
//!   the rot guard `scripts/verify.sh` runs against the live endpoint;
//! * `--follow`: re-fetch every `--poll-ms` (default 500) and print
//!   what moved since the previous poll — counter increments and
//!   per-histogram delta count with the delta window's own p50/p99
//!   (via [`HistSnapshot::delta_from`]); `--max-polls` bounds the
//!   watch for scripted use (0 = forever).
//!
//! Usage: `metrics_view <snapshot.json | --socket PATH> [--prom]
//! [--check] [--follow] [--poll-ms <n>] [--max-polls <n>]`

use fun3d_util::report::Table;
use fun3d_util::telemetry::json::Json;
use fun3d_util::telemetry::metrics::{self, HistSnapshot, MetricsSnapshot};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;

struct Args {
    path: String,
    socket: Option<String>,
    prom: bool,
    check: bool,
    follow: bool,
    poll_ms: u64,
    max_polls: u64,
}

fn parse_args() -> Args {
    let mut out = Args {
        path: String::new(),
        socket: None,
        prom: false,
        check: false,
        follow: false,
        poll_ms: 500,
        max_polls: 0,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                i += 1;
                out.socket = Some(args[i].clone());
            }
            "--prom" => out.prom = true,
            "--check" => out.check = true,
            "--follow" => out.follow = true,
            "--poll-ms" => {
                i += 1;
                out.poll_ms = args[i].parse().expect("--poll-ms takes an integer");
            }
            "--max-polls" => {
                i += 1;
                out.max_polls = args[i].parse().expect("--max-polls takes an integer");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: metrics_view <snapshot.json | --socket PATH> [--prom] \
                     [--check] [--follow] [--poll-ms <n>] [--max-polls <n>]"
                );
                std::process::exit(0);
            }
            other if out.path.is_empty() && !other.starts_with("--") => {
                out.path = other.to_string();
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(1);
            }
        }
        i += 1;
    }
    if out.path.is_empty() && out.socket.is_none() {
        eprintln!("usage: metrics_view <snapshot.json | --socket PATH> [--check] [--follow]");
        std::process::exit(1);
    }
    out
}

/// Fetches the raw payload: file read, or one request/response round
/// trip on the metrics socket.
fn fetch(args: &Args) -> Result<String, String> {
    match &args.socket {
        Some(path) => {
            let mut stream = UnixStream::connect(path)
                .map_err(|e| format!("cannot connect to {path}: {e}"))?;
            let line = if args.prom { "prom\n" } else { "json\n" };
            stream
                .write_all(line.as_bytes())
                .map_err(|e| format!("write to {path} failed: {e}"))?;
            let mut out = String::new();
            stream
                .read_to_string(&mut out)
                .map_err(|e| format!("read from {path} failed: {e}"))?;
            Ok(out)
        }
        None => std::fs::read_to_string(&args.path)
            .map_err(|e| format!("cannot read {}: {e}", args.path)),
    }
}

/// Reconstructs a [`MetricsSnapshot`] from the strict-JSON artifact so
/// the delta/quantile logic is the library's, not a reimplementation.
/// Bucket indices come back via [`metrics::bucket_of`] on each emitted
/// lower bound (a bucket's `lo` maps to itself by construction).
fn from_json(doc: &Json) -> Result<MetricsSnapshot, String> {
    metrics::check_snapshot(doc)?;
    let pairs = |section: &str| -> Vec<(String, u64)> {
        match doc.get(section) {
            Some(Json::Obj(entries)) => entries
                .iter()
                .filter_map(|(n, v)| v.as_f64().map(|x| (n.clone(), x as u64)))
                .collect(),
            _ => Vec::new(),
        }
    };
    let mut hists = Vec::new();
    if let Some(Json::Obj(entries)) = doc.get("histograms") {
        for (name, h) in entries {
            let num = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
            let mut buckets = Vec::new();
            if let Some(arr) = h.get("buckets").and_then(Json::as_arr) {
                for b in arr {
                    let b = b.as_arr().ok_or("bucket is not an array")?;
                    let lo = b[0].as_f64().ok_or("bucket lo not a number")? as u64;
                    let c = b[2].as_f64().ok_or("bucket count not a number")? as u64;
                    let idx = metrics::bucket_of(lo)
                        .ok_or_else(|| format!("bucket lo {lo} out of range"))?;
                    buckets.push((idx, c));
                }
            }
            hists.push(HistSnapshot {
                name: name.clone(),
                count: num("count"),
                sum_ns: num("sum_ns"),
                max_ns: num("max_ns"),
                overflow: num("overflow"),
                buckets,
            });
        }
    }
    Ok(MetricsSnapshot {
        t_ns: doc.get("t_ns").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        counters: pairs("counters"),
        gauges: pairs("gauges"),
        hists,
    })
}

fn load_snapshot(args: &Args) -> Result<MetricsSnapshot, String> {
    let text = fetch(args)?;
    let doc = Json::parse(&text).map_err(|e| format!("payload is not valid JSON: {e}"))?;
    from_json(&doc)
}

fn source_name(args: &Args) -> String {
    args.socket.clone().unwrap_or_else(|| args.path.clone())
}

const MS: f64 = 1e-6;

fn fmt_ms(ns: f64) -> String {
    if ns.is_nan() {
        "-".to_string()
    } else {
        format!("{:.3}", ns * MS)
    }
}

/// Full render: scalar table then histogram table.
fn render(snap: &MetricsSnapshot, source: &str) {
    println!(
        "{source}: t={:.3} ms, {} counters, {} gauges, {} histograms\n",
        snap.t_ns as f64 * MS,
        snap.counters.len(),
        snap.gauges.len(),
        snap.hists.len()
    );
    if !snap.counters.is_empty() || !snap.gauges.is_empty() {
        let mut table = Table::new("metrics_view: counters and gauges", &["name", "kind", "value"]);
        for (n, v) in &snap.counters {
            table.row(&[n.clone(), "counter".to_string(), v.to_string()]);
        }
        for (n, v) in &snap.gauges {
            table.row(&[n.clone(), "gauge".to_string(), v.to_string()]);
        }
        print!("{}", table.render());
        println!();
    }
    if !snap.hists.is_empty() {
        let mut table = Table::new(
            "metrics_view: histograms (ms)",
            &["name", "count", "p50", "p90", "p99", "max", "mean", "overflow"],
        );
        for h in &snap.hists {
            table.row(&[
                h.name.clone(),
                h.count.to_string(),
                fmt_ms(h.quantile(0.50)),
                fmt_ms(h.quantile(0.90)),
                fmt_ms(h.quantile(0.99)),
                fmt_ms(h.max_ns as f64),
                fmt_ms(h.mean()),
                h.overflow.to_string(),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
}

/// One `--follow` frame: everything that moved since `prev`.
fn render_delta(snap: &MetricsSnapshot, prev: &MetricsSnapshot, source: &str) {
    let mut lines = Vec::new();
    for (n, v) in &snap.counters {
        let d = v.saturating_sub(prev.counter(n));
        if d > 0 {
            lines.push(format!("  {n:<40} +{d}"));
        }
    }
    for (n, v) in &snap.gauges {
        if prev.gauge(n) != *v {
            lines.push(format!("  {n:<40} ={v} (was {})", prev.gauge(n)));
        }
    }
    for h in &snap.hists {
        let d = match prev.hist(&h.name) {
            Some(p) => h.delta_from(p),
            None => h.clone(),
        };
        if d.count > 0 {
            lines.push(format!(
                "  {:<40} +{}  p50 {} ms  p99 {} ms  max {} ms",
                h.name,
                d.count,
                fmt_ms(d.quantile(0.50)),
                fmt_ms(d.quantile(0.99)),
                fmt_ms(d.max_ns as f64),
            ));
        }
    }
    if lines.is_empty() {
        return;
    }
    println!("{source}: t={:.3} ms, {} changed", snap.t_ns as f64 * MS, lines.len());
    for l in lines {
        println!("{l}");
    }
}

fn follow(args: &Args) {
    let mut prev: Option<MetricsSnapshot> = None;
    let mut polls = 0u64;
    loop {
        match load_snapshot(args) {
            Ok(snap) => {
                match &prev {
                    // A writer may be mid-snapshot or the service not yet
                    // up; retry on the next poll either way.
                    None => render(&snap, &source_name(args)),
                    Some(p) => render_delta(&snap, p, &source_name(args)),
                }
                prev = Some(snap);
            }
            Err(e) => println!("metrics_view: {e} (retrying)"),
        }
        polls += 1;
        if args.max_polls > 0 && polls >= args.max_polls {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(args.poll_ms));
    }
}

fn main() {
    let args = parse_args();
    if args.check {
        let verdict = fetch(&args).and_then(|text| {
            if args.prom {
                metrics::check_prometheus(&text)
            } else {
                let doc = Json::parse(&text)
                    .map_err(|e| format!("payload is not valid JSON: {e}"))?;
                metrics::check_snapshot(&doc)
            }
        });
        match verdict {
            Ok(n) => {
                println!(
                    "{}: OK ({n} {})",
                    source_name(&args),
                    if args.prom { "exposition series" } else { "metrics" }
                );
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("check failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.follow {
        follow(&args);
        return;
    }
    match load_snapshot(&args) {
        Ok(snap) => render(&snap, &source_name(&args)),
        Err(e) => {
            eprintln!("metrics_view: {e}");
            std::process::exit(1);
        }
    }
}
