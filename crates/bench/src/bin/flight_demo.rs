//! **flight_demo** — drives the black-box flight recorder end to end on
//! a tiny solve, with optional fault injection.
//!
//! Three modes (`--inject`):
//!
//! * `none` (default) — a clean convergent solve; asserts that *no*
//!   flight dump is written (the negative canary: always-on recording
//!   must not mean always-dumping);
//! * `divergence` — poisons the residual with NaN a few steps in, so
//!   the ΨTC anomaly detector fires and writes
//!   `<prefix>.divergence.json`;
//! * `panic` — panics one worker inside a pool region, so the launcher
//!   records the panic and writes `<prefix>.region_panic.json` before
//!   propagating it.
//!
//! In the fault modes the binary re-validates the dump it provoked with
//! the same strict checker `flight_view --check` uses, and exits
//! non-zero if the artifact is missing or malformed — this is the gate
//! `scripts/verify.sh` runs.
//!
//! Usage: `flight_demo [--inject none|divergence|panic] [--dir <path>]
//! [--prefix <stem>]`

use fun3d_solver::precond::{Preconditioner, SerialIlu};
use fun3d_solver::ptc::{self, PtcConfig, PtcProblem};
use fun3d_solver::{Anomaly, ExecMode};
use fun3d_sparse::Bcsr4;
use fun3d_threads::ThreadPool;
use fun3d_util::telemetry::flight;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq)]
enum Inject {
    None,
    Divergence,
    Panic,
}

/// The step at which a fault is injected; the tiny problem below needs
/// at least twice this many SER steps at `dt0 = 0.5`, so the fault
/// always lands mid-flight.
const INJECT_STEP: usize = 2;

fn fail(msg: &str) -> ! {
    eprintln!("flight_demo: FAILED: {msg}");
    std::process::exit(1);
}

/// The ΨTC test problem: `f(u) = A u − b` on the tiny mesh, ILU(0)
/// preconditioned, region-per-op threading on a 2-worker pool — small
/// enough to run in milliseconds, real enough to exercise every flight
/// event source (solve, steps, GMRES, regions).
struct DemoProblem {
    a: Bcsr4,
    b: Vec<f64>,
    precond: Option<SerialIlu>,
    pool: Arc<ThreadPool>,
    inject: Inject,
    poisoned: bool,
}

impl DemoProblem {
    fn new(inject: Inject) -> DemoProblem {
        let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
        let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(41);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) * 0.1).collect();
        DemoProblem {
            a,
            b,
            precond: None,
            pool: Arc::new(ThreadPool::new(2)),
            inject,
            poisoned: false,
        }
    }
}

impl PtcProblem for DemoProblem {
    fn dim(&self) -> usize {
        self.a.dim()
    }
    fn residual(&mut self, u: &[f64], r: &mut [f64]) {
        self.a.spmv(u, r);
        for i in 0..r.len() {
            r[i] -= self.b[i];
        }
        if self.poisoned {
            r[0] = f64::NAN;
        }
    }
    fn time_diag(&self, dt: f64, out: &mut [f64]) {
        out.iter_mut().for_each(|o| *o = 1.0 / dt);
    }
    fn build_preconditioner(&mut self, _u: &[f64], _time_diag: &[f64]) {
        if self.precond.is_none() {
            self.precond = Some(SerialIlu::new(&self.a, 0));
        }
    }
    fn preconditioner(&self) -> &dyn Preconditioner {
        self.precond.as_ref().unwrap()
    }
    fn on_step(&mut self, step: usize, _res_norm: f64, _dt: f64) {
        if step != INJECT_STEP {
            return;
        }
        match self.inject {
            Inject::None => {}
            // The next residual evaluation goes NaN: the anomaly
            // detector sees it at the following step's norm.
            Inject::Divergence => self.poisoned = true,
            Inject::Panic => {
                self.pool.run(|tid| {
                    if tid == 1 {
                        panic!("injected worker panic (flight_demo)");
                    }
                });
            }
        }
    }
    fn solver_pool(&self) -> Option<Arc<ThreadPool>> {
        Some(Arc::clone(&self.pool))
    }
    fn exec_mode(&self) -> ExecMode {
        ExecMode::PerOp
    }
}

fn config() -> PtcConfig {
    PtcConfig {
        // Small dt0: convergence takes plenty of steps, so step-3 faults
        // always land mid-flight.
        dt0: 0.5,
        rtol: 1e-10,
        max_steps: 200,
        ..Default::default()
    }
}

/// Checks that the dump the fault should have produced exists and
/// passes the strict validator; returns its path.
fn expect_dump(trigger: flight::Trigger) -> PathBuf {
    let path = flight::dump_dir().join(format!("{}.{}.json", prefix(), trigger.slug()));
    if !path.exists() {
        fail(&format!("expected dump {} was not written", path.display()));
    }
    match flight::check_dump_file(&path) {
        Ok(n) => println!(
            "flight_demo: {} OK ({n} events, trigger {})",
            path.display(),
            trigger.slug()
        ),
        Err(e) => fail(&format!("dump {} is malformed: {e}", path.display())),
    }
    path
}

fn prefix() -> String {
    std::env::var("FUN3D_FLIGHT_PREFIX").unwrap_or_else(|_| "flight".to_string())
}

fn main() {
    let mut inject = Inject::None;
    let mut prefix_override: Option<String> = None;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--inject" => {
                i += 1;
                inject = match args[i].as_str() {
                    "none" => Inject::None,
                    "divergence" => Inject::Divergence,
                    "panic" => Inject::Panic,
                    other => fail(&format!("unknown --inject '{other}'")),
                };
            }
            "--dir" => {
                i += 1;
                flight::set_dump_dir(&args[i]);
            }
            "--prefix" => {
                i += 1;
                prefix_override = Some(args[i].clone());
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --inject <none|divergence|panic> --dir <path> --prefix <stem>"
                );
                std::process::exit(0);
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if let Some(p) = prefix_override {
        std::env::set_var("FUN3D_FLIGHT_PREFIX", &p);
        flight::set_dump_prefix(p);
    }

    let mut problem = DemoProblem::new(inject);
    let n = problem.dim();
    let mut u = vec![0.0; n];

    match inject {
        Inject::Panic => {
            let result = catch_unwind(AssertUnwindSafe(|| {
                ptc::solve(&mut problem, &mut u, &config())
            }));
            if result.is_ok() {
                fail("injected worker panic did not propagate");
            }
            println!("flight_demo: worker panic propagated as expected");
            expect_dump(flight::Trigger::RegionPanic);
        }
        Inject::Divergence => {
            let stats = ptc::solve(&mut problem, &mut u, &config());
            match stats.anomaly {
                Some(Anomaly::Divergence { step, .. }) => {
                    println!("flight_demo: divergence detected at step {step}");
                }
                other => fail(&format!(
                    "expected a divergence anomaly, got {other:?} (converged: {})",
                    stats.converged
                )),
            }
            expect_dump(flight::Trigger::Divergence);
        }
        Inject::None => {
            let stats = ptc::solve(&mut problem, &mut u, &config());
            if !stats.converged {
                fail(&format!(
                    "clean run failed to converge (history: {:?})",
                    stats.res_history
                ));
            }
            // Negative canary: an anomaly-free run must leave no dump.
            let dir = flight::dump_dir();
            for trigger in [
                flight::Trigger::RegionPanic,
                flight::Trigger::Divergence,
                flight::Trigger::Stagnation,
                flight::Trigger::WallBudget,
                flight::Trigger::Request,
            ] {
                let path = dir.join(format!("{}.{}.json", prefix(), trigger.slug()));
                if path.exists() {
                    fail(&format!(
                        "clean run left a dump behind: {}",
                        path.display()
                    ));
                }
            }
            println!(
                "flight_demo: clean solve converged in {} steps, no dump written",
                stats.time_steps
            );
        }
    }
}
