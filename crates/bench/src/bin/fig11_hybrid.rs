//! **Figure 11** — Baseline vs Optimized (MPI-only) vs Hybrid
//! (2 ranks/node × 8 threads) scaled to 256 nodes.
//!
//! Paper: Hybrid beats Baseline by 10–23% (fewer subdomains → better
//! convergence, cheaper collectives) but trails the MPI-only Optimized
//! version because PETSc's vector/scatter primitives are not threaded
//! (the Amdahl fraction); MPI-only additionally suffers +30% iterations
//! at 256 nodes.

use fun3d_bench::emit;
use fun3d_bench::multinode as fig9;
use fun3d_cluster::scaling::{simulate_point, ExecStyle, ScalingConfig};
use fun3d_machine::{MachineSpec, NetworkSpec};
use fun3d_mesh::generator::MeshPreset;
use fun3d_util::report::{fmt_g, Table};

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let machine = MachineSpec::xeon_e5_2680();
    let net = NetworkSpec::stampede_fdr();
    let sm = fig9::calibrate(&cli.mesh);

    let mut table = Table::new(
        "Fig. 11: Baseline vs Optimized vs Hybrid (modeled, seconds)",
        &[
            "nodes",
            "baseline",
            "optimized",
            "hybrid",
            "hybrid vs baseline",
            "iters (MPI / hybrid)",
        ],
    );
    for nodes in fig9::NODES {
        let cb = ScalingConfig::mesh_d(ExecStyle::Baseline);
        let co = ScalingConfig::mesh_d(ExecStyle::Optimized);
        let ch = ScalingConfig::mesh_d(ExecStyle::Hybrid);
        let pb = simulate_point(&machine, &net, &cb, nodes, &fig9::workload(&cli.mesh, &sm, &cb, nodes));
        let po = simulate_point(&machine, &net, &co, nodes, &fig9::workload(&cli.mesh, &sm, &co, nodes));
        let ph = simulate_point(&machine, &net, &ch, nodes, &fig9::workload(&cli.mesh, &sm, &ch, nodes));
        table.row(&[
            nodes.to_string(),
            fmt_g(pb.total_s),
            fmt_g(po.total_s),
            fmt_g(ph.total_s),
            format!("{:.0}%", 100.0 * (pb.total_s - ph.total_s) / pb.total_s),
            format!("{:.0} / {:.0}", pb.linear_iters, ph.linear_iters),
        ]);
    }
    emit("fig11_hybrid", &table);
    println!("\npaper: hybrid 10–23% better than baseline; MPI-only optimized fastest");
}
