//! Shared plumbing for the experiment binaries (one per paper table /
//! figure; see DESIGN.md §4 for the index).
//!
//! Every binary accepts:
//!
//! * `--mesh <tiny|small|medium|large|mesh-c|mesh-d>` — workload size
//!   (defaults differ per experiment; paper-size runs take long on this
//!   single-core container);
//! * `--reps <n>` — measurement repetitions for host timings;
//!
//! prints an aligned table to stdout and mirrors it to
//! `target/experiments/<name>.csv`.

pub mod model;
pub mod multinode;

use fun3d_core::{Fun3dApp, FlowConditions};
use fun3d_mesh::generator::MeshPreset;
use fun3d_mesh::{DualMesh, Mesh};
use fun3d_util::report::{experiments_dir, Table};
use fun3d_util::Rng64;

/// Parsed common CLI options.
#[derive(Clone, Copy, Debug)]
pub struct Cli {
    /// Mesh preset.
    pub mesh: MeshPreset,
    /// Host-measurement repetitions.
    pub reps: usize,
}

impl Cli {
    /// Parses `std::env::args`, with a per-experiment default preset.
    pub fn parse(default_mesh: MeshPreset) -> Cli {
        let mut cli = Cli {
            mesh: default_mesh,
            reps: 3,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--mesh" => {
                    i += 1;
                    cli.mesh = MeshPreset::parse(&args[i])
                        .unwrap_or_else(|| panic!("unknown mesh preset '{}'", args[i]));
                }
                "--reps" => {
                    i += 1;
                    cli.reps = args[i].parse().expect("--reps takes an integer");
                }
                "--help" | "-h" => {
                    eprintln!("options: --mesh <tiny|small|medium|large|mesh-c|mesh-d> --reps <n>");
                    std::process::exit(0);
                }
                other => panic!("unknown argument '{other}'"),
            }
            i += 1;
        }
        cli
    }
}

/// Builds the RCM-reordered mesh for a preset (the ordering the paper's
/// optimized configurations use).
pub fn build_mesh(preset: MeshPreset) -> Mesh {
    let mut mesh = preset.build();
    Fun3dApp::rcm_reorder(&mut mesh);
    mesh
}

/// A kernel-level fixture: mesh, dual metrics, edge geometry, randomized
/// near-free-stream state (so flux kernels exercise all code paths).
pub struct KernelFixture {
    /// The mesh.
    pub mesh: Mesh,
    /// Dual metrics.
    pub dual: DualMesh,
    /// Edge geometry.
    pub geom: fun3d_core::EdgeGeom,
    /// AoS node state with gradients populated.
    pub node: fun3d_core::NodeAos,
    /// Flow conditions.
    pub cond: FlowConditions,
}

impl KernelFixture {
    /// Builds the fixture for a preset.
    pub fn new(preset: MeshPreset) -> KernelFixture {
        let mesh = build_mesh(preset);
        let dual = DualMesh::build(&mesh);
        let geom = fun3d_core::EdgeGeom::build(&mesh, &dual);
        let cond = FlowConditions::default();
        let mut node = fun3d_core::NodeAos::zeros(mesh.nvertices());
        node.set_freestream(&cond.qinf);
        let mut rng = Rng64::new(0xBEEF);
        for x in node.q.iter_mut() {
            *x += rng.range_f64(-0.05, 0.05);
        }
        // realistic gradients via one Green-Gauss pass
        let bc = fun3d_core::bc::BcData::build(&dual);
        fun3d_core::gradient::green_gauss(&geom, &bc, &dual.vol, &mut node);
        KernelFixture {
            mesh,
            dual,
            geom,
            node,
            cond,
        }
    }

    /// The boundary table (rebuilt on demand).
    pub fn bc(&self) -> fun3d_core::bc::BcData {
        fun3d_core::bc::BcData::build(&self.dual)
    }
}

/// Builds the assembled first-order Jacobian with a pseudo-time shift —
/// the matrix the ILU/TRSV experiments factor.
pub fn jacobian_fixture(fix: &KernelFixture, dt: f64) -> fun3d_sparse::Bcsr4 {
    let bc = fix.bc();
    let mut jac = fun3d_sparse::Bcsr4::from_edges(fix.mesh.nvertices(), &fix.geom.edges);
    fun3d_core::jacobian::assemble(&fix.geom, &bc, &fix.node, &fix.cond, &mut jac);
    let n = jac.dim();
    let mut shift = vec![0.0; n];
    for v in 0..fix.mesh.nvertices() {
        let vdt = fix.dual.vol[v] / dt;
        shift[v * 4] = vdt / fix.cond.beta;
        for c in 1..4 {
            shift[v * 4 + c] = vdt;
        }
    }
    fun3d_core::jacobian::add_time_diagonal(&mut jac, &shift);
    jac
}

/// Median seconds of `reps` measured runs of `f` (after one warm-up).
pub fn measure(reps: usize, f: impl FnMut()) -> f64 {
    let times = fun3d_util::stats::measure_secs(reps, f);
    fun3d_util::Summary::of(&times).unwrap().median
}

/// Prints the table and writes `<name>.csv` under `target/experiments`.
pub fn emit(name: &str, table: &Table) {
    print!("{}", table.render());
    match table.write_csv(&experiments_dir(), name) {
        Ok(path) => println!("[csv written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write csv: {e}"),
    }
}

/// Formats a speedup ratio.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}x")
}

/// Thread counts swept in the single-node figures (paper: 10 cores, 20
/// SMT threads).
pub const THREAD_SWEEP: [usize; 6] = [1, 2, 4, 6, 8, 10];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_has_gradients() {
        let fix = KernelFixture::new(MeshPreset::Tiny);
        assert!(fix.geom.nedges() > 0);
        let gmax = fix.node.grad.iter().map(|x| x.abs()).fold(0.0, f64::max);
        assert!(gmax > 0.0, "gradients should be nonzero");
    }

    #[test]
    fn jacobian_fixture_is_factorable() {
        let fix = KernelFixture::new(MeshPreset::Tiny);
        let jac = jacobian_fixture(&fix, 1.0);
        let f = fun3d_sparse::ilu::ilu0(&jac);
        assert_eq!(f.nrows(), jac.nrows());
    }

    #[test]
    fn measure_returns_positive() {
        let t = measure(2, || {
            std::hint::black_box((0..10_000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }
}
