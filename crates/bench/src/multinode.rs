//! Shared helpers for the multi-node figure binaries (Figs. 9-11).

use fun3d_cluster::scaling::{ScalingConfig, SurfaceModel, Workload};
use fun3d_mesh::generator::MeshPreset;

/// Node counts of the paper's sweep.
pub const NODES: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Mesh-D vertex count (the dataset of the multi-node study).
pub const MESH_D_VERTS: f64 = 2.76e6;

/// Builds the per-style workload for a node count: real decomposition
/// when subdomains stay ≥ 500 vertices, surface-model synthesis beyond.
pub fn workload(
    base: &MeshPreset,
    sm: &SurfaceModel,
    cfg: &ScalingConfig,
    nodes: usize,
) -> Workload {
    let ranks = nodes * cfg.ranks_per_node();
    let mesh = base.build();
    let nv = mesh.nvertices();
    if nv / ranks >= 500 {
        let decomp = fun3d_cluster::Decomposition::build(nv, &mesh.edges(), ranks);
        Workload::from_decomposition(&decomp, 2.0).rescale(MESH_D_VERTS / nv as f64)
    } else {
        sm.workload(ranks, MESH_D_VERTS, 2.0)
    }
}

/// Shared calibration for the multi-node binaries.
pub fn calibrate(base: &MeshPreset) -> SurfaceModel {
    let mesh = base.build();
    let ranks = (mesh.nvertices() / 800).clamp(2, 64);
    SurfaceModel::calibrate(mesh.nvertices(), &mesh.edges(), ranks)
}

