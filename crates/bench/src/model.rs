//! Modeled kernel speedups for the full-application figures
//! (Figs. 8a/8b, Table II): each kernel class's speedup at a given core
//! count, from real plans and schedules charged to the paper machine.

use crate::{jacobian_fixture, KernelFixture};
use fun3d_machine::{kernels, EdgeLoopCosts, MachineSpec, RecurrenceCosts};
use fun3d_partition::{partition_graph, MultilevelConfig, OwnerWritesPlan};
use fun3d_sparse::{ilu, DagStats, P2pSchedule, TempBuffer};

/// Modeled speedups of every kernel class at `cores` (20 SMT threads on
/// 10 cores etc.), from real plans/schedules of the given fixture.
pub struct KernelSpeedups {
    /// flux (owner-writes + AoS + SIMD + prefetch) vs scalar SoA serial.
    pub flux: f64,
    /// gradient (owner-writes threading of the scalar kernel).
    pub gradient: f64,
    /// Jacobian assembly (edge loop, threading only).
    pub jacobian: f64,
    /// ILU factorization (P2P).
    pub ilu: f64,
    /// TRSV (P2P).
    pub trsv: f64,
    /// vector primitives etc. (threaded but bandwidth-bound).
    pub other: f64,
}

pub fn model_speedups(fix: &KernelFixture, machine: &MachineSpec, cores: usize) -> KernelSpeedups {
    model_speedups_fill(fix, machine, cores, 1)
}

/// Like [`model_speedups`] with an explicit ILU fill level (Table II).
pub fn model_speedups_fill(
    fix: &KernelFixture,
    machine: &MachineSpec,
    cores: usize,
    fill: usize,
) -> KernelSpeedups {
    let costs = EdgeLoopCosts::default();
    let rc = RecurrenceCosts::default();
    let threads = cores * machine.smt;
    let ne = fix.geom.nedges();
    let graph = fun3d_mesh::Graph::from_edges(fix.mesh.nvertices(), &fix.geom.edges);
    let plan = OwnerWritesPlan::build(
        &fix.geom.edges,
        &partition_graph(&graph, threads, &MultilevelConfig::default()),
        threads,
    );
    let per_thread: Vec<usize> = plan.edges_of.iter().map(Vec::len).collect();

    let edge_speedup = |serial_cyc: f64, par_cyc: f64| -> f64 {
        let t0 =
            kernels::edge_loop_time(machine, &[ne], serial_cyc, costs.dram_bytes_per_edge, 0.0);
        let t1 = kernels::edge_loop_time(
            machine,
            &per_thread,
            par_cyc,
            costs.dram_bytes_per_edge,
            0.0,
        );
        t0 / t1
    };
    let flux = edge_speedup(costs.scalar_soa, costs.simd_prefetch);
    let gradient = edge_speedup(costs.scalar_aos, costs.scalar_aos);
    let jacobian = gradient;

    // recurrences on the real ILU(1) factors of the real Jacobian
    let jac = jacobian_fixture(fix, 1.0);
    let pattern = ilu::symbolic_iluk(&jac, fill);
    let factors = ilu::factor(&jac, &pattern, TempBuffer::Compressed);
    let p2p_f = P2pSchedule::forward(&factors.l, threads);
    let p2p_b = P2pSchedule::backward(&factors.u, threads);
    let fwd_blocks: Vec<usize> = (0..factors.nrows())
        .map(|r| factors.l.row_ptr[r + 1] - factors.l.row_ptr[r] + 1)
        .collect();
    let bwd_blocks: Vec<usize> = (0..factors.nrows())
        .map(|r| factors.u.row_ptr[r + 1] - factors.u.row_ptr[r] + 1)
        .collect();
    let loads = |s: &P2pSchedule, blocks: &[usize]| -> (Vec<usize>, Vec<usize>) {
        (
            s.tasks
                .iter()
                .map(|t| t.iter().map(|task| blocks[task.row as usize]).sum())
                .collect(),
            s.tasks
                .iter()
                .map(|t| t.iter().map(|task| task.waits.len()).sum())
                .collect(),
        )
    };
    let dag = DagStats::for_trsv(&factors.l, &factors.u);
    let total_blocks =
        (fwd_blocks.iter().sum::<usize>() + bwd_blocks.iter().sum::<usize>()) as f64;
    let trsv_serial = machine.seconds(total_blocks * rc.trsv_cycles_per_block);
    let (fl, fw) = loads(&p2p_f, &fwd_blocks);
    let (bl, bw) = loads(&p2p_b, &bwd_blocks);
    let trsv_par = kernels::p2p_time(
        machine,
        &fl,
        &fw,
        dag.critical_flops / 64.0,
        rc.trsv_cycles_per_block,
        rc.trsv_bytes_per_block,
    ) + kernels::p2p_time(
        machine,
        &bl,
        &bw,
        dag.critical_flops / 64.0,
        rc.trsv_cycles_per_block,
        rc.trsv_bytes_per_block,
    );
    let trsv = trsv_serial / trsv_par;

    let ilu_blocks: Vec<usize> = (0..factors.nrows())
        .map(|r| {
            let low = factors.l.row_ptr[r + 1] - factors.l.row_ptr[r];
            let updates: usize = factors.l.col_idx
                [factors.l.row_ptr[r]..factors.l.row_ptr[r + 1]]
                .iter()
                .map(|&k| factors.u.row_ptr[k as usize + 1] - factors.u.row_ptr[k as usize])
                .sum();
            low + updates + 1
        })
        .collect();
    let ilu_dag = DagStats::for_ilu(&pattern);
    let ilu_serial =
        machine.seconds(ilu_blocks.iter().sum::<usize>() as f64 * rc.ilu_cycles_per_block);
    let (il, iw) = loads(&p2p_f, &ilu_blocks);
    let ilu_par = kernels::p2p_time(
        machine,
        &il,
        &iw,
        ilu_dag.critical_flops / 128.0,
        rc.ilu_cycles_per_block,
        rc.ilu_bytes_per_block,
    );
    let ilu_speedup = ilu_serial / ilu_par;

    // Vector primitives: streaming, bandwidth-bound — scale with the
    // bandwidth ramp (saturates ~4 cores), slightly uplifted by SIMD.
    let other = (machine.bandwidth_at(cores) / machine.bandwidth_at(1)).min(cores as f64);

    KernelSpeedups {
        flux,
        gradient,
        jacobian,
        ilu: ilu_speedup,
        trsv,
        other,
    }
}

