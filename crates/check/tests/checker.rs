//! Self-tests for the model checker: the engine must catch seeded bugs
//! (races, deadlocks, livelocks, assertion failures), must NOT flag
//! correctly synchronized protocols, and must replay failures
//! bit-identically from their seeds.

use fun3d_check::sync::{AtomicBool, AtomicU64, AtomicUsize, Ordering, ShimCell};
use fun3d_check::{explore, replay_seed, sample, thread, Config, FailureKind};
use std::sync::Arc;

fn small_cfg() -> Config {
    Config {
        max_threads: 4,
        preemption_bound: Some(3),
        max_schedules: 50_000,
        history: 4,
    }
}

// ---- positive: correctly synchronized programs pass ----

#[test]
fn release_acquire_message_passing_passes() {
    let report = explore(&small_cfg(), || {
        let data = Arc::new(ShimCell::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            f2.store(true, Ordering::Release);
        });
        // Spin via the shim so the scheduler can deschedule us.
        while !flag.load(Ordering::Acquire) {
            fun3d_check::sync::spin_hint();
        }
        data.with(|p| assert_eq!(unsafe { *p }, 42));
        t.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhaustive);
    assert!(report.schedules >= 2, "expected real interleaving exploration");
}

#[test]
fn join_synchronizes_without_atomics() {
    let report = explore(&small_cfg(), || {
        let data = Arc::new(ShimCell::new(0u64));
        let d2 = Arc::clone(&data);
        let t = thread::spawn(move || d2.with_mut(|p| unsafe { *p = 7 }));
        t.join();
        data.with(|p| assert_eq!(unsafe { *p }, 7));
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn rmw_counter_is_atomic() {
    // Two increment threads + main: final value must always be 2.
    let report = explore(&small_cfg(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let (a, b) = (Arc::clone(&n), Arc::clone(&n));
        let t1 = thread::spawn(move || {
            a.fetch_add(1, Ordering::Relaxed);
        });
        let t2 = thread::spawn(move || {
            b.fetch_add(1, Ordering::Relaxed);
        });
        t1.join();
        t2.join();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhaustive);
}

// ---- negative: seeded bugs are caught ----

#[test]
fn unsynchronized_write_write_is_a_race() {
    let report = explore(&small_cfg(), || {
        let data = Arc::new(ShimCell::new(0u64));
        let d2 = Arc::clone(&data);
        let t = thread::spawn(move || d2.with_mut(|p| unsafe { *p = 1 }));
        data.with_mut(|p| unsafe { *p = 2 });
        t.join();
    });
    let f = report.failure.expect("checker must flag the race");
    assert_eq!(f.kind, FailureKind::DataRace);
    assert!(f.message.contains("data race"), "{}", f.message);
    assert!(!f.schedule.is_empty());
}

#[test]
fn relaxed_flag_publication_is_a_race() {
    // The classic bug the sync_shim port exists to catch: publishing with
    // a Relaxed store drops the release edge, so the reader's access to
    // the payload races with the writer's.
    let report = explore(&small_cfg(), || {
        let data = Arc::new(ShimCell::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            f2.store(true, Ordering::Relaxed); // BUG: should be Release
        });
        while !flag.load(Ordering::Acquire) {
            fun3d_check::sync::spin_hint();
        }
        data.with(|p| unsafe { *p });
        t.join();
    });
    let f = report.failure.expect("checker must flag the relaxed publication");
    assert_eq!(f.kind, FailureKind::DataRace);
}

#[test]
fn relaxed_load_of_release_store_is_a_race() {
    // The dual bug: the store releases but the reader loads relaxed, so
    // no acquire edge forms.
    let report = explore(&small_cfg(), || {
        let data = Arc::new(ShimCell::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            f2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Relaxed) {
            // BUG: should be Acquire
            fun3d_check::sync::spin_hint();
        }
        data.with(|p| unsafe { *p });
        t.join();
    });
    let f = report.failure.expect("checker must flag the relaxed load");
    assert_eq!(f.kind, FailureKind::DataRace);
}

#[test]
fn relaxed_loads_explore_stale_values() {
    // With no synchronization at all, a relaxed load may legally return
    // the older value even after the store is coherence-ordered first in
    // some schedules. The checker must find an execution where the load
    // sees 0 *after* the writer finished — i.e. it explores read-from
    // choices, not just interleavings.
    let report = explore(&small_cfg(), || {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.store(1, Ordering::Relaxed));
        t.join();
        // Join is a real happens-before edge, so here the stale value is
        // excluded: must read 1.
        assert_eq!(x.load(Ordering::Relaxed), 1);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);

    // Without the join edge, some schedule must observe the stale 0 even
    // though the store already happened in coherence order.
    let report = explore(&small_cfg(), || {
        let x = Arc::new(AtomicU64::new(0));
        let saw = Arc::new(AtomicBool::new(false));
        let (x2, saw2) = (Arc::clone(&x), Arc::clone(&saw));
        let t = thread::spawn(move || {
            if x2.load(Ordering::Relaxed) == 0 {
                saw2.store(true, Ordering::Relaxed);
            }
        });
        x.store(1, Ordering::Relaxed);
        t.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn deadlock_is_detected() {
    let report = explore(&small_cfg(), || {
        // Main joins a child that spins forever on a flag nobody sets —
        // after the child blocks, no live thread can store: livelock or
        // (if the child never gets to spin) deadlock. Either way the
        // execution must fail rather than hang.
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            while !f2.load(Ordering::Acquire) {
                fun3d_check::sync::spin_hint();
            }
        });
        t.join();
    });
    let f = report.failure.expect("hung model must fail, not hang");
    assert!(
        matches!(f.kind, FailureKind::Livelock | FailureKind::Deadlock),
        "{:?}",
        f.kind
    );
}

#[test]
fn assertion_panics_become_failures_with_schedules() {
    let report = explore(&small_cfg(), || {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.store(1, Ordering::Release));
        // Racy check: some schedules see 0, some see 1 — the 0 schedules
        // must surface as Panic failures.
        assert_eq!(x.load(Ordering::Acquire), 1, "lost the race");
        t.join();
    });
    let f = report.failure.expect("some schedule must fail the assertion");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("lost the race"), "{}", f.message);
}

// ---- exploration mechanics ----

#[test]
fn preemption_bound_prunes_schedules() {
    let body = || {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            for _ in 0..3 {
                x2.fetch_add(1, Ordering::Relaxed);
            }
        });
        for _ in 0..3 {
            x.fetch_add(1, Ordering::Relaxed);
        }
        t.join();
    };
    let unbounded = explore(
        &Config {
            preemption_bound: None,
            ..small_cfg()
        },
        body,
    );
    let bounded = explore(
        &Config {
            preemption_bound: Some(1),
            ..small_cfg()
        },
        body,
    );
    assert!(unbounded.failure.is_none());
    assert!(bounded.failure.is_none());
    assert!(
        bounded.schedules < unbounded.schedules,
        "bound must prune: {} !< {}",
        bounded.schedules,
        unbounded.schedules
    );
}

#[test]
fn schedule_budget_is_respected() {
    let report = explore(
        &Config {
            max_schedules: 5,
            ..small_cfg()
        },
        || {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                for _ in 0..4 {
                    x2.fetch_add(1, Ordering::Relaxed);
                }
            });
            for _ in 0..4 {
                x.fetch_add(1, Ordering::Relaxed);
            }
            t.join();
        },
    );
    assert!(!report.exhaustive);
    assert_eq!(report.schedules, 5);
}

// ---- seeded replay (satellite: FUN3D_CHECK_SEED determinism) ----

fn racy_body() {
    let data = Arc::new(ShimCell::new(0u64));
    let flag = Arc::new(AtomicBool::new(false));
    let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
    let t = thread::spawn(move || {
        d2.with_mut(|p| unsafe { *p = 42 });
        f2.store(true, Ordering::Relaxed); // BUG: should be Release
    });
    if flag.load(Ordering::Acquire) {
        data.with(|p| unsafe { *p });
    }
    t.join();
}

#[test]
fn sampling_finds_the_race_and_reports_a_seed() {
    let report = sample(&small_cfg(), 500, 0x5eed_f00d, racy_body);
    let f = report.failure.expect("sampling must find the race");
    assert_eq!(f.kind, FailureKind::DataRace);
    let seed = f.seed.expect("random-mode failures carry their seed");
    let rendered = f.render("racy_body");
    assert!(
        rendered.contains(&format!("FUN3D_CHECK_SEED={seed:#018x}")),
        "report must print a replay line: {rendered}"
    );
}

#[test]
fn failing_seed_replays_bit_identically() {
    let report = sample(&small_cfg(), 500, 0xdead_beef, racy_body);
    let f = report.failure.expect("sampling must find the race");
    let seed = f.seed.unwrap();
    // Replaying the reported seed must reproduce the exact schedule —
    // the same Vec<Step>, not merely the same failure kind.
    let replay = replay_seed(&small_cfg(), seed, racy_body);
    let rf = replay.failure.expect("replay must reproduce the failure");
    assert_eq!(rf.kind, f.kind);
    assert_eq!(rf.schedule, f.schedule, "replay diverged from the original failure");
    assert_eq!(rf.message, f.message);
    // And twice more for determinism paranoia.
    let replay2 = replay_seed(&small_cfg(), seed, racy_body);
    assert_eq!(replay2.failure.unwrap().schedule, f.schedule);
}

#[test]
fn model_random_honors_env_seed_contract() {
    // model_random derives its base seed from the name (no env var), so
    // two runs are identical; this is the determinism proptest_mini
    // promises for FUN3D_PROP_SEED, mirrored for FUN3D_CHECK_SEED.
    let a = sample(&small_cfg(), 50, fun3d_check::fnv1a("some-model"), || {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.store(1, Ordering::Release));
        x.load(Ordering::Acquire);
        t.join();
    });
    assert!(a.failure.is_none());
    assert_eq!(a.schedules, 50);
}

// ---- verify.sh negative wiring: a deliberately racy model run under
// `fun3d_check::model` must make the test binary FAIL. verify.sh runs
// this ignored test and asserts a nonzero exit, proving the harness
// actually turns races into failures (the PR-1 guard idiom). ----

#[test]
#[ignore = "negative canary: run by scripts/verify.sh expecting failure"]
fn canary_unchecked_race_fails_the_suite() {
    fun3d_check::model("canary_unchecked_race", racy_body);
}
