//! fun3d-check: an in-tree deterministic concurrency model checker for
//! the workspace's hand-rolled sync substrate.
//!
//! The solver's hot path depends on custom lock-free protocols (doorbell
//! dispatch, sense-reversing barrier, P2P epoch flags, tree-reduction
//! mailboxes, seqlock telemetry rings). Wall-clock stress tests barely
//! exercise their interleavings on a small container, and the hermetic
//! zero-dependency rule rules out loom and miri — so, as with the
//! bench/proptest substrate of PR 1, the checker is built in-tree.
//!
//! Architecture (one module per concern):
//! - [`clock`] — vector clocks; the happens-before lattice.
//! - [`engine`] — virtual threads on a cooperative handoff scheduler;
//!   every shim operation is a logged choice point, so executions are
//!   pure functions of their choice sequences. Bounded-exhaustive DFS
//!   (with a preemption bound) and seeded random sampling both drive the
//!   same engine.
//! - [`sync`] — shim atomics recording release/acquire clock edges and
//!   modification order (bounded stale-value exploration for `Relaxed`
//!   loads), plus [`sync::ShimCell`] for race-checked non-atomic data.
//! - [`thread`] — `spawn`/`join` for virtual threads.
//! - [`shim`] — the cfg-switched surface protocols import: std types in
//!   normal builds, the tracked types under `--cfg fun3d_check`.
//!
//! Entry points: [`model`] (bounded-exhaustive, panics on failure with a
//! printed schedule), [`model_random`] (seeded sampling; failures print
//! a `FUN3D_CHECK_SEED=0x…` replay line, mirroring
//! `fun3d_util::proptest_mini`'s `FUN3D_PROP_SEED` idiom), and the
//! non-panicking [`explore`]/[`sample`]/[`replay_seed`] for tests that
//! assert the checker *does* catch a seeded bug.

pub mod clock;
pub mod engine;
pub mod shim;
pub mod sync;
pub mod thread;

pub use engine::{explore, replay_seed, sample, Config, Failure, FailureKind, Report, Step};

/// Environment variable that replays one exact seed through the random
/// driver (and, when set, overrides [`model_random`]'s sampling).
pub const SEED_ENV: &str = "FUN3D_CHECK_SEED";

/// FNV-1a, used to derive a stable per-model base seed from the model
/// name — the same idiom `proptest_mini` uses for `FUN3D_PROP_SEED`.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Parses a seed in `0x…` hex or decimal (the formats the replay line
/// prints and users paste back).
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u64>().ok()
    }
}

fn env_seed() -> Option<u64> {
    std::env::var(SEED_ENV).ok().and_then(|v| parse_seed(&v))
}

/// Checks `f` under bounded-exhaustive DFS with the default
/// [`Config`]; panics with the rendered failing schedule on any data
/// race, deadlock, livelock, or assertion panic. If `FUN3D_CHECK_SEED`
/// is set, runs that one seeded schedule instead (replay mode).
///
/// Returns the [`Report`] so tests can additionally assert exploration
/// stats (schedule counts, exhaustiveness).
pub fn model<F>(name: &str, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(name, &Config::default(), f)
}

/// [`model`] with an explicit [`Config`].
pub fn model_with<F>(name: &str, cfg: &Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = if let Some(seed) = env_seed() {
        replay_seed(cfg, seed, f)
    } else {
        explore(cfg, f)
    };
    if let Some(failure) = &report.failure {
        panic!("{}", failure.render(name));
    }
    report
}

/// Checks `f` under `samples` seeded random schedules (base seed derived
/// from `name` via FNV-1a, so runs are reproducible without any env
/// var). Panics on failure with a rendered schedule that includes a
/// `FUN3D_CHECK_SEED=0x…` replay line; setting that variable reruns
/// exactly the failing schedule.
pub fn model_random<F>(name: &str, samples: usize, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_random_with(name, &Config::default(), samples, f)
}

/// [`model_random`] with an explicit [`Config`].
pub fn model_random_with<F>(name: &str, cfg: &Config, samples: usize, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = if let Some(seed) = env_seed() {
        replay_seed(cfg, seed, f)
    } else {
        sample(cfg, samples, fnv1a(name), f)
    };
    if let Some(failure) = &report.failure {
        panic!("{}", failure.render(name));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed("0X2A"), Some(42));
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed(" 0xdeadbeef "), Some(0xdead_beef));
        assert_eq!(parse_seed("nope"), None);
    }
}
