//! The cfg-switched sync surface the workspace protocols are written
//! against (re-exported as `fun3d_threads::sync_shim`).
//!
//! - Normal builds (`cfg(not(fun3d_check))`): zero-cost — the atomics
//!   ARE `std::sync::atomic` types, `ShimCell` is a transparent
//!   `UnsafeCell` wrapper with `#[inline]` untracked accessors, and the
//!   spin/yield hints are the std ones. The solver hot path pays
//!   nothing for being model-checkable.
//! - Model builds (`RUSTFLAGS="--cfg fun3d_check"`): the checker's
//!   tracked types from [`crate::sync`]. These still fall back to real
//!   std behaviour on any thread that is not part of an active model
//!   execution, so ordinary tests keep passing under the cfg; only
//!   bodies run under `fun3d_check::model*` get schedule exploration
//!   and race detection.
//!
//! Code on this surface must use the loom-style cell API
//! (`with`/`with_mut` taking raw pointers) instead of touching
//! `UnsafeCell` directly — that is the one source-level change the port
//! requires, and it is what gives the checker its race-detection hooks.

#[cfg(fun3d_check)]
pub use crate::sync::{
    spin_hint, yield_now, AtomicBool, AtomicU64, AtomicUsize, Ordering, ShimCell,
};

#[cfg(not(fun3d_check))]
pub use fallback::{spin_hint, yield_now, AtomicBool, AtomicU64, AtomicUsize, Ordering, ShimCell};

#[cfg(not(fun3d_check))]
mod fallback {
    use std::cell::UnsafeCell;

    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    /// Untracked `UnsafeCell` with the same API as the checker's tracked
    /// cell, so protocol code is written once.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct ShimCell<T> {
        data: UnsafeCell<T>,
    }

    unsafe impl<T: Send> Send for ShimCell<T> {}
    unsafe impl<T: Send> Sync for ShimCell<T> {}

    impl<T> ShimCell<T> {
        #[inline]
        pub const fn new(v: T) -> ShimCell<T> {
            ShimCell {
                data: UnsafeCell::new(v),
            }
        }

        /// Read access. The pointer must not escape the closure, and the
        /// caller is responsible for the protocol-level ordering that the
        /// model build verifies.
        #[inline]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.data.get())
        }

        /// Write access. Same contract as [`ShimCell::with`].
        #[inline]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.data.get())
        }

        #[inline]
        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }

        #[inline]
        pub fn get_mut(&mut self) -> &mut T {
            self.data.get_mut()
        }
    }

    #[inline]
    pub fn spin_hint() {
        std::hint::spin_loop();
    }

    #[inline]
    pub fn yield_now() {
        std::thread::yield_now();
    }
}
