//! Virtual-thread spawn/join.
//!
//! Model test bodies use `fun3d_check::thread::spawn` exactly like
//! `std::thread::spawn`. Inside an active model execution it registers a
//! new virtual thread under the cooperative scheduler (with a
//! spawn happens-before edge from parent to child and a join edge from
//! child's final state to the joiner). On any other thread it is a plain
//! std spawn, so helpers written against this module also work in
//! ordinary tests.

use crate::engine;
use std::panic::Location;
use std::sync::{Arc, Mutex};

enum Handle<T> {
    Virtual {
        exec: Arc<engine::Execution>,
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    },
    Os(std::thread::JoinHandle<T>),
}

/// Join handle for either a virtual or a real thread.
pub struct JoinHandle<T>(Handle<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread. In a model, a virtual thread that panicked
    /// already failed the whole execution, so this only returns values
    /// from clean completions. For OS threads this mirrors
    /// `std::thread::JoinHandle::join` but panics on a panicked child
    /// (model tests want failures loud, not `Result`-wrapped).
    #[track_caller]
    pub fn join(self) -> T {
        match self.0 {
            Handle::Virtual { exec, tid, result } => {
                let (_, me) = engine::current()
                    .expect("virtual JoinHandle joined from outside its model execution");
                exec.join(me, tid, Location::caller());
                result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined virtual thread finished without a result")
            }
            Handle::Os(h) => h.join().expect("spawned thread panicked"),
        }
    }
}

/// Spawn a thread: virtual inside a model execution, real otherwise.
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match engine::current() {
        Some((exec, me)) => {
            let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
            let slot = Arc::clone(&result);
            let tid = exec.spawn(
                me,
                Location::caller(),
                Box::new(move || {
                    let v = f();
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                }),
            );
            JoinHandle(Handle::Virtual { exec, tid, result })
        }
        None => JoinHandle(Handle::Os(std::thread::spawn(f))),
    }
}
