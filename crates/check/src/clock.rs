//! Vector clocks for happens-before tracking.
//!
//! Each virtual thread carries a [`VClock`]; component `t` is the number
//! of events thread `t` had performed the last time its knowledge reached
//! this clock's owner. An access `a` *happens before* an access `b` iff
//! the clock of `b`'s thread at `b` has `get(a.thread) >= a.epoch` —
//! i.e. `b`'s thread had (transitively) synchronized with `a`'s thread
//! after `a`. Clocks flow along program order (each thread ticks its own
//! component per event), spawn/join edges, and release→acquire edges on
//! the shim atomics.

/// A vector clock, stored sparsely (missing components are zero). Model
/// executions involve at most a handful of threads, so a plain `Vec`
/// beats any map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    c: Vec<u64>,
}

impl VClock {
    /// The zero clock (happens before everything).
    pub fn new() -> VClock {
        VClock::default()
    }

    /// Component `t` (zero if never set).
    #[inline]
    pub fn get(&self, t: usize) -> u64 {
        self.c.get(t).copied().unwrap_or(0)
    }

    /// Sets component `t`.
    pub fn set(&mut self, t: usize, v: u64) {
        if self.c.len() <= t {
            self.c.resize(t + 1, 0);
        }
        self.c[t] = v;
    }

    /// Advances component `t` by one (one event on thread `t`).
    pub fn tick(&mut self, t: usize) {
        let v = self.get(t) + 1;
        self.set(t, v);
    }

    /// Pointwise maximum: afterwards this clock knows everything `other`
    /// knew (the acquire side of a synchronizes-with edge).
    pub fn join(&mut self, other: &VClock) {
        for (t, &v) in other.c.iter().enumerate() {
            if v > self.get(t) {
                self.set(t, v);
            }
        }
    }

    /// Forgets everything (used when a relaxed store breaks a release
    /// chain: the location no longer publishes any history).
    pub fn clear(&mut self) {
        self.c.clear();
    }

    /// True when this clock has witnessed event `epoch` of thread `t` —
    /// i.e. that event happens-before the holder's current position.
    #[inline]
    pub fn has_seen(&self, t: usize, epoch: u64) -> bool {
        self.get(t) >= epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VClock::new();
        b.set(0, 3);
        b.set(1, 7);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 7);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn has_seen_models_happens_before() {
        let mut observer = VClock::new();
        observer.set(1, 4);
        assert!(observer.has_seen(1, 4));
        assert!(observer.has_seen(1, 3));
        assert!(!observer.has_seen(1, 5));
        assert!(observer.has_seen(2, 0), "epoch 0 precedes the model");
    }
}
