//! The deterministic execution engine.
//!
//! A model execution runs the test body on **virtual threads**: real OS
//! threads whose execution is serialized by a cooperative handoff
//! scheduler — exactly one virtual thread runs at any instant, and every
//! shim operation (atomic access, tracked-cell access, spawn/join,
//! spin hint) is a *schedule point* where the scheduler may hand the
//! token to a different thread. Because only scheduler choices (and
//! explicit value choices for stale relaxed loads) steer the run, an
//! execution is a pure function of its choice sequence, which is what
//! makes exhaustive enumeration and seeded replay possible.
//!
//! Nondeterminism is funnelled through one primitive: `choose(n)`.
//! Thread-scheduling decisions and read-from decisions both go through
//! it, and every call is logged as a [`Step`]. The DFS driver backtracks
//! over the logged steps (last branch with an untried alternative);
//! the random driver draws choices from a SplitMix64 stream seeded per
//! sample, so a failure's seed replays it bit-identically.
//!
//! Spin loops are handled by *blocking until a store*: a thread that
//! calls the shim spin hint is descheduled until some thread performs an
//! atomic store newer than the global store stamp at the spinner's
//! *previous* spin hint — i.e. newer than the start of the loop
//! iteration whose condition evaluation just failed. (Using the stamp of
//! the spinner's last load would be unsound: a loop that loads several
//! atomics per iteration could miss a store landing between them and
//! block forever.) If every live thread is spinning, no store can ever
//! release them — reported as a livelock. If every live thread is
//! blocked on joins, that is a deadlock. Both failures carry the full
//! schedule.

use crate::clock::VClock;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Virtual threads unwind (with [`AbortToken`]) while holding the
/// scheduler lock when an execution is torn down, which poisons a std
/// `Mutex`; teardown is an expected path here, so every acquisition
/// tolerates poison instead of propagating it.
fn lock_inner<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_cv<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

/// Generation counter distinguishing executions, so shim objects created
/// in one execution never alias metadata ids in the next.
static EXEC_GEN: StdAtomicU64 = StdAtomicU64::new(1);

/// SplitMix64 step (same algorithm the workspace RNG uses for seeding).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Panic payload used to unwind virtual threads when the execution is
/// torn down after a failure; the thread wrapper swallows it.
pub(crate) struct AbortToken;

/// How the current execution resolves `choose(n)` calls past the replay
/// prefix.
enum ChoiceSource {
    /// Pick choice 0 (DFS explores alternatives by extending the prefix).
    First,
    /// Draw from a SplitMix64 stream (random sampling mode).
    Rng(u64),
}

/// One logged choice point: scheduling or read-from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// Virtual thread the choice put in motion (for read-from choices,
    /// the loading thread).
    pub tid: usize,
    /// Human-readable description of the operation about to execute.
    pub op: String,
    /// Number of alternatives that existed at this point.
    pub nchoices: usize,
    /// Which alternative was taken.
    pub chosen: usize,
}

/// Why an execution failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Two unordered accesses to a tracked cell, at least one a write.
    DataRace,
    /// Every live thread blocked on a join.
    Deadlock,
    /// Every live thread spinning with no possible writer.
    Livelock,
    /// A virtual thread panicked (assertion in the model body, or a
    /// panic in the code under test).
    Panic,
    /// Model limits exceeded (too many threads, runaway execution).
    Limit,
}

/// A failing schedule with everything needed to report and replay it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Classification.
    pub kind: FailureKind,
    /// What went wrong (race endpoints with source locations, panic
    /// message, …).
    pub message: String,
    /// The full choice log of the failing execution.
    pub schedule: Vec<Step>,
    /// The per-sample seed, when the failure came from random sampling.
    pub seed: Option<u64>,
}

impl Failure {
    /// Renders the failure as a multi-line report: message, interleaved
    /// schedule, and (random mode) a replay line mirroring the
    /// `FUN3D_PROP_SEED` idiom.
    pub fn render(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("model '{name}' failed: {:?}\n", self.kind));
        out.push_str(&format!("  {}\n", self.message));
        out.push_str(&format!("  schedule ({} steps):\n", self.schedule.len()));
        for (i, s) in self.schedule.iter().enumerate() {
            let alt = if s.nchoices > 1 {
                format!("  [choice {}/{}]", s.chosen + 1, s.nchoices)
            } else {
                String::new()
            };
            out.push_str(&format!("    step {i:3}  T{}  {}{}\n", s.tid, s.op, alt));
        }
        if let Some(seed) = self.seed {
            out.push_str(&format!(
                "  replay: FUN3D_CHECK_SEED={seed:#018x} cargo test -- {name}"
            ));
        } else {
            out.push_str("  replay: deterministic — rerunning the exhaustive search finds this schedule again");
        }
        out
    }
}

/// Result of an exploration ([`crate::explore`] / [`crate::sample`]).
#[derive(Debug)]
pub struct Report {
    /// Executions run.
    pub schedules: usize,
    /// True when the DFS visited every schedule within the preemption
    /// bound before hitting the schedule budget.
    pub exhaustive: bool,
    /// The first failure found, if any.
    pub failure: Option<Failure>,
}

/// Exploration limits and semantics knobs.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum virtual threads per execution (spawn past this fails the
    /// model).
    pub max_threads: usize,
    /// DFS: maximum preemptive context switches per schedule (a switch
    /// away from a still-runnable thread). `None` = unbounded.
    pub preemption_bound: Option<usize>,
    /// Maximum executions before the search gives up (reported as
    /// non-exhaustive). Overridable via `FUN3D_CHECK_BUDGET`.
    pub max_schedules: usize,
    /// Store-history depth for stale relaxed loads: a `Relaxed` load may
    /// read any of the last `history` stores that coherence and
    /// happens-before allow. `1` = always read the newest value.
    pub history: usize,
}

impl Default for Config {
    fn default() -> Config {
        let max_schedules = std::env::var("FUN3D_CHECK_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(50_000);
        Config {
            max_threads: 4,
            preemption_bound: Some(3),
            max_schedules,
            history: 4,
        }
    }
}

/// A scheduling status of one virtual thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Parked at a schedule point, runnable.
    Parked,
    /// Currently holding the execution token.
    Running,
    /// Waiting for a thread to finish.
    BlockedJoin(usize),
    /// Spinning: runnable only after a store newer than `seen`.
    BlockedSpin { seen: u64 },
    /// Done (normally, panicked, or aborted).
    Finished,
}

/// The operation a parked thread will perform when next scheduled.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OpDesc {
    pub what: &'static str,
    pub loc: &'static Location<'static>,
}

impl OpDesc {
    fn render(&self) -> String {
        format!("{} @ {}:{}", self.what, trim_path(self.loc.file()), self.loc.line())
    }
}

fn trim_path(p: &str) -> &str {
    // Keep the last two path components so reports stay readable.
    let mut idx = 0;
    let mut seen = 0;
    for (i, b) in p.bytes().enumerate().rev() {
        if b == b'/' || b == b'\\' {
            seen += 1;
            if seen == 2 {
                idx = i + 1;
                break;
            }
        }
    }
    &p[idx..]
}

struct ThreadState {
    status: Status,
    clock: VClock,
    pending: OpDesc,
    /// Per-atomic last observed store stamp (read coherence).
    seen: HashMap<usize, u64>,
    /// Global store stamp at this thread's previous spin hint (0 before
    /// the first): a spin hint blocks until a newer store lands, which is
    /// what lets spin loops terminate under exhaustive exploration. The
    /// stamp is taken at the *hint*, not at the last load, so a store
    /// landing anywhere inside the failed condition evaluation keeps the
    /// spinner runnable for one more look.
    spin_stamp: u64,
    /// True when the most recent load (deliberately) returned a stale
    /// value. A spin hint after a stale load is a plain yield that sets
    /// `force_fresh` — modelling eventual visibility, so a spin loop
    /// can't livelock on staleness the hardware would eventually resolve.
    last_load_stale: bool,
    /// Next load must read the coherence-newest store (set by a
    /// post-stale spin hint).
    force_fresh: bool,
    final_clock: Option<VClock>,
}

impl ThreadState {
    fn new(clock: VClock, pending: OpDesc) -> ThreadState {
        ThreadState {
            status: Status::Parked,
            clock,
            pending,
            seen: HashMap::new(),
            spin_stamp: 0,
            last_load_stale: false,
            force_fresh: false,
            final_clock: None,
        }
    }
}

/// One store in an atomic's (bounded) modification history.
#[derive(Clone, Debug)]
struct StoreRec {
    val: u64,
    /// Position in the global modification-order stamp sequence.
    stamp: u64,
    writer: usize,
    /// The writer's own epoch at the store; `clock.has_seen(writer,
    /// writer_epoch)` decides whether the store happens-before a reader.
    writer_epoch: u64,
    /// Publication clock an acquire load of this store joins (empty for
    /// a relaxed store that broke the release chain).
    sync: VClock,
}

#[derive(Default)]
struct AtomicMeta {
    history: Vec<StoreRec>,
}

/// One access to a tracked cell (for race reporting).
#[derive(Clone, Debug)]
struct CellAccess {
    tid: usize,
    epoch: u64,
    loc: &'static Location<'static>,
    step: usize,
}

#[derive(Default)]
struct CellMeta {
    write: Option<CellAccess>,
    reads: Vec<CellAccess>,
}

pub(crate) struct ExecInner {
    threads: Vec<ThreadState>,
    running: usize,
    steps: Vec<Step>,
    /// Forced choices (DFS replay prefix).
    prefix: Vec<usize>,
    source: ChoiceSource,
    seed: Option<u64>,
    atomics: Vec<AtomicMeta>,
    cells: Vec<CellMeta>,
    store_stamp: u64,
    preemptions: usize,
    cfg: Config,
    failure: Option<Failure>,
    aborting: bool,
    all_done: bool,
    live: usize,
}

/// One model execution: scheduler state plus the virtual-thread handoff
/// condvar. Shared by every virtual thread via `Arc`.
pub(crate) struct Execution {
    pub(crate) gen: u64,
    inner: Mutex<ExecInner>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The execution and virtual-thread id of the calling OS thread, when it
/// is a virtual thread of an active model (shim operations fall back to
/// plain std behaviour otherwise).
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Total executions are hard-capped in steps to catch accidentally
/// unbounded model bodies with a clear error instead of a hang.
const MAX_STEPS_PER_EXEC: usize = 100_000;

impl Execution {
    fn new(cfg: Config, prefix: Vec<usize>, source: ChoiceSource, seed: Option<u64>) -> Execution {
        Execution {
            gen: EXEC_GEN.fetch_add(1, StdOrdering::Relaxed),
            inner: Mutex::new(ExecInner {
                threads: Vec::new(),
                running: 0,
                steps: Vec::new(),
                prefix,
                source,
                seed,
                atomics: Vec::new(),
                cells: Vec::new(),
                store_stamp: 0,
                preemptions: 0,
                cfg,
                failure: None,
                aborting: false,
                all_done: false,
                live: 0,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    // ---- failure / teardown ----

    fn fail(&self, g: &mut ExecInner, kind: FailureKind, message: String) {
        if g.failure.is_none() {
            g.failure = Some(Failure {
                kind,
                message,
                schedule: g.steps.clone(),
                seed: g.seed,
            });
        }
        g.aborting = true;
        self.cv.notify_all();
    }

    fn abort_unwind(&self) -> ! {
        std::panic::panic_any(AbortToken)
    }

    // ---- choice recording ----

    /// Resolves one `choose(n)` against the replay prefix / strategy and
    /// logs it. `desc` renders the alternative actually taken.
    fn choose(&self, g: &mut ExecInner, n: usize, tid: usize, desc: impl Fn(usize) -> String) -> usize {
        debug_assert!(n >= 1);
        let idx = g.steps.len();
        if idx >= MAX_STEPS_PER_EXEC {
            self.fail(
                g,
                FailureKind::Limit,
                format!("execution exceeded {MAX_STEPS_PER_EXEC} schedule points; model body too large or unbounded"),
            );
            self.abort_unwind();
        }
        let chosen = if idx < g.prefix.len() {
            let c = g.prefix[idx];
            assert!(
                c < n,
                "schedule replay diverged at step {idx} (forced choice {c} of {n}): \
                 model bodies must be deterministic apart from shim operations"
            );
            c
        } else {
            match g.source {
                ChoiceSource::First => 0,
                ChoiceSource::Rng(ref mut s) => (splitmix64(s) % n as u64) as usize,
            }
        };
        g.steps.push(Step {
            tid,
            op: desc(chosen),
            nchoices: n,
            chosen,
        });
        chosen
    }

    // ---- scheduling core ----

    /// Picks and wakes the next thread. `me_runnable` is true when the
    /// caller parked itself at a schedule point (so continuing it is an
    /// alternative); false when it blocked or finished.
    fn reschedule(&self, g: &mut ExecInner, me: usize, me_runnable: bool) {
        let mut cands: Vec<usize> = Vec::new();
        if me_runnable {
            cands.push(me);
        }
        for t in 0..g.threads.len() {
            if t != me && g.threads[t].status == Status::Parked {
                cands.push(t);
            }
        }
        if cands.is_empty() {
            let spinning = g
                .threads
                .iter()
                .any(|t| matches!(t.status, Status::BlockedSpin { .. }));
            if g.threads.iter().all(|t| t.status == Status::Finished) {
                // Caller handles completion; nothing to schedule.
                return;
            }
            let (kind, msg) = if spinning {
                (
                    FailureKind::Livelock,
                    "livelock: every live thread is spinning and no thread can perform a store"
                        .to_string(),
                )
            } else {
                (
                    FailureKind::Deadlock,
                    "deadlock: every live thread is blocked on a join".to_string(),
                )
            };
            self.fail(g, kind, msg);
            self.abort_unwind();
        }
        // Preemption bounding: once the budget is spent, a runnable
        // current thread keeps running (only voluntary switches remain).
        let bound_hit = g
            .cfg
            .preemption_bound
            .is_some_and(|b| g.preemptions >= b);
        let effective: Vec<usize> = if me_runnable && bound_hit {
            vec![me]
        } else {
            cands
        };
        let n = effective.len();
        let threads = &g.threads;
        let descs: Vec<String> = effective
            .iter()
            .map(|&t| threads[t].pending.render())
            .collect();
        let ci = self.choose(g, n, usize::MAX, |c| descs[c].clone());
        // Patch the logged tid now that the pick is known.
        let pick = effective[ci];
        let last = g.steps.len() - 1;
        g.steps[last].tid = pick;
        if me_runnable && pick != me {
            g.preemptions += 1;
        }
        g.running = pick;
        self.cv.notify_all();
    }

    fn wait_for_turn<'a>(
        &self,
        mut g: MutexGuard<'a, ExecInner>,
        me: usize,
    ) -> MutexGuard<'a, ExecInner> {
        while g.running != me && !g.aborting {
            g = wait_cv(&self.cv, g);
        }
        if g.aborting {
            drop(g);
            self.abort_unwind();
        }
        g
    }

    /// Announces `op` as this thread's next action, lets the scheduler
    /// decide, and returns (with the lock) once it is this thread's turn
    /// to perform it.
    pub(crate) fn turn(&self, me: usize, op: OpDesc) -> MutexGuard<'_, ExecInner> {
        let mut g = lock_inner(&self.inner);
        if g.aborting {
            drop(g);
            self.abort_unwind();
        }
        g.threads[me].pending = op;
        g.threads[me].status = Status::Parked;
        self.reschedule(&mut g, me, true);
        g = self.wait_for_turn(g, me);
        g.threads[me].status = Status::Running;
        g
    }

    /// Shim spin hint: deschedule until some other thread stores, unless
    /// a store already landed since this thread's previous spin hint
    /// (then it is a plain yield — the failed condition evaluation may
    /// simply not have looked at that store yet).
    pub(crate) fn spin_wait(&self, me: usize, loc: &'static Location<'static>) {
        let mut g = lock_inner(&self.inner);
        if g.aborting {
            drop(g);
            self.abort_unwind();
        }
        g.threads[me].pending = OpDesc { what: "spin", loc };
        let seen = g.threads[me].spin_stamp;
        g.threads[me].spin_stamp = g.store_stamp;
        // Eventual visibility: when the last load deliberately returned a
        // stale value, spinning is what resolves it — stay runnable and
        // make the next load read fresh, instead of blocking for a store
        // that may never come (which would be a false livelock).
        let stale = g.threads[me].last_load_stale;
        if stale {
            g.threads[me].force_fresh = true;
        }
        let runnable = stale || g.store_stamp > seen;
        g.threads[me].status = if runnable {
            Status::Parked
        } else {
            Status::BlockedSpin { seen }
        };
        self.reschedule(&mut g, me, runnable);
        g = self.wait_for_turn(g, me);
        g.threads[me].status = Status::Running;
    }

    /// Registers a new virtual thread and spawns its OS carrier.
    pub(crate) fn spawn(
        self: &Arc<Self>,
        me: usize,
        loc: &'static Location<'static>,
        f: Box<dyn FnOnce() + Send>,
    ) -> usize {
        let mut g = self.turn(me, OpDesc { what: "spawn", loc });
        let tid = g.threads.len();
        if tid >= g.cfg.max_threads {
            let max = g.cfg.max_threads;
            self.fail(
                &mut g,
                FailureKind::Limit,
                format!("model spawned more than max_threads = {max} virtual threads"),
            );
            drop(g);
            self.abort_unwind();
        }
        // Spawn edge: the child starts knowing everything the parent knew.
        let mut clock = g.threads[me].clock.clone();
        clock.tick(tid);
        g.threads.push(ThreadState::new(
            clock,
            OpDesc { what: "start", loc },
        ));
        g.live += 1;
        g.threads[me].clock.tick(me);
        drop(g);
        self.run_virtual(tid, f);
        tid
    }

    /// Starts the OS carrier thread for virtual thread `tid`.
    fn run_virtual(self: &Arc<Self>, tid: usize, f: Box<dyn FnOnce() + Send>) {
        let exec = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name(format!("fun3d-check-t{tid}"))
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
                {
                    // Wait for the first turn before touching anything.
                    let g = lock_inner(&exec.inner);
                    let g = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        exec.wait_for_turn(g, tid)
                    })) {
                        Ok(mut g) => {
                            g.threads[tid].status = Status::Running;
                            g
                        }
                        Err(_) => {
                            // Aborted before ever running.
                            exec.thread_finished(tid, None);
                            CURRENT.with(|c| *c.borrow_mut() = None);
                            return;
                        }
                    };
                    drop(g);
                }
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                let panic_msg = match outcome {
                    Ok(()) => None,
                    Err(p) if p.is::<AbortToken>() => None,
                    Err(p) => Some(panic_message(p)),
                };
                exec.thread_finished(tid, panic_msg);
                CURRENT.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn model carrier thread");
        lock_inner(&self.handles).push(h);
    }

    /// Blocks until `target` finishes, with a join happens-before edge.
    pub(crate) fn join(&self, me: usize, target: usize, loc: &'static Location<'static>) {
        let mut g = self.turn(me, OpDesc { what: "join", loc });
        if g.threads[target].status != Status::Finished {
            g.threads[me].status = Status::BlockedJoin(target);
            self.reschedule(&mut g, me, false);
            g = self.wait_for_turn(g, me);
            g.threads[me].status = Status::Running;
        }
        let final_clock = g.threads[target]
            .final_clock
            .clone()
            .expect("joined thread has a final clock");
        g.threads[me].clock.join(&final_clock);
        g.threads[me].clock.tick(me);
    }

    fn thread_finished(&self, me: usize, panic_msg: Option<String>) {
        let mut g = lock_inner(&self.inner);
        g.threads[me].final_clock = Some(g.threads[me].clock.clone());
        g.threads[me].status = Status::Finished;
        g.live -= 1;
        if let Some(msg) = panic_msg {
            self.fail(&mut g, FailureKind::Panic, format!("virtual thread T{me} panicked: {msg}"));
        }
        // Release joiners.
        for t in 0..g.threads.len() {
            if g.threads[t].status == Status::BlockedJoin(me) {
                g.threads[t].status = Status::Parked;
            }
        }
        if g.threads.iter().all(|t| t.status == Status::Finished) {
            g.all_done = true;
            self.cv.notify_all();
            return;
        }
        if g.aborting {
            self.cv.notify_all();
            return;
        }
        // Hand the token onward; catch the teardown unwind so the carrier
        // exits cleanly instead of double-panicking.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.reschedule(&mut g, me, false);
        }));
    }

    // ---- shim atomic operations ----

    /// Lazily assigns this execution's metadata id for a shim object.
    /// `ids` packs `(gen << 32) | (id + 1)`; stale generations re-register.
    pub(crate) fn atomic_id(&self, g: &mut ExecInner, ids: &StdAtomicU64, init: u64) -> usize {
        let packed = ids.load(StdOrdering::Relaxed);
        if packed >> 32 == self.gen & 0xFFFF_FFFF {
            return (packed & 0xFFFF_FFFF) as usize - 1;
        }
        let id = g.atomics.len();
        let mut meta = AtomicMeta::default();
        // Creation counts as happening before the whole model: writer
        // epoch 0 is seen by every clock.
        meta.history.push(StoreRec {
            val: init,
            stamp: 0,
            writer: 0,
            writer_epoch: 0,
            sync: VClock::new(),
        });
        g.atomics.push(meta);
        ids.store(((self.gen & 0xFFFF_FFFF) << 32) | (id as u64 + 1), StdOrdering::Relaxed);
        id
    }

    pub(crate) fn cell_id(&self, g: &mut ExecInner, ids: &StdAtomicU64) -> usize {
        let packed = ids.load(StdOrdering::Relaxed);
        if packed >> 32 == self.gen & 0xFFFF_FFFF {
            return (packed & 0xFFFF_FFFF) as usize - 1;
        }
        let id = g.cells.len();
        g.cells.push(CellMeta::default());
        ids.store(((self.gen & 0xFFFF_FFFF) << 32) | (id as u64 + 1), StdOrdering::Relaxed);
        id
    }

    /// An atomic load. Relaxed loads may (as an explored choice) read any
    /// store in the bounded history that coherence and happens-before
    /// allow; acquire loads read the newest store and join its
    /// publication clock.
    pub(crate) fn atomic_load(
        &self,
        me: usize,
        ids: &StdAtomicU64,
        init: u64,
        ord: Ordering,
        loc: &'static Location<'static>,
    ) -> u64 {
        let mut g = self.turn(me, OpDesc { what: load_name(ord), loc });
        let id = self.atomic_id(&mut g, ids, init);
        let hist_len = g.atomics[id].history.len();
        let fresh = std::mem::take(&mut g.threads[me].force_fresh);
        let stale_ok = matches!(ord, Ordering::Relaxed) && g.cfg.history > 1 && !fresh;
        let chosen_rec = if stale_ok && hist_len > 1 {
            // Candidate stores, oldest first: not superseded by a store
            // that happens-before this load, and not older than a store
            // this thread already observed (read coherence).
            let seen_stamp = g.threads[me].seen.get(&id).copied().unwrap_or(0);
            let clock = g.threads[me].clock.clone();
            let hist = &g.atomics[id].history;
            let mut cands: Vec<usize> = Vec::new();
            for i in 0..hist.len() {
                let rec = &hist[i];
                if rec.stamp < seen_stamp {
                    continue;
                }
                let superseded = hist[i + 1..]
                    .iter()
                    .any(|newer| clock.has_seen(newer.writer, newer.writer_epoch));
                if !superseded {
                    cands.push(i);
                }
            }
            debug_assert!(!cands.is_empty(), "newest store is always a candidate");
            let pick = if cands.len() > 1 {
                let hist_desc: Vec<String> = cands
                    .iter()
                    .map(|&i| {
                        let rec = &g.atomics[id].history[i];
                        format!(
                            "read-from atomic a{id}: store #{} (value {}) @ {}:{}",
                            rec.stamp,
                            rec.val,
                            trim_path(loc.file()),
                            loc.line()
                        )
                    })
                    .collect();
                self.choose(&mut g, cands.len(), me, |c| hist_desc[c].clone())
            } else {
                0
            };
            cands[pick]
        } else {
            hist_len - 1
        };
        let rec = g.atomics[id].history[chosen_rec].clone();
        g.threads[me].seen.insert(id, rec.stamp);
        g.threads[me].last_load_stale = chosen_rec + 1 != hist_len;
        if is_acquire(ord) {
            g.threads[me].clock.join(&rec.sync);
        }
        g.threads[me].clock.tick(me);
        rec.val
    }

    /// An atomic store: appends to the modification history, publishes
    /// the writer's clock when releasing (and *breaks* the location's
    /// release chain when relaxed), and releases blocked spinners.
    pub(crate) fn atomic_store(
        &self,
        me: usize,
        ids: &StdAtomicU64,
        init: u64,
        val: u64,
        ord: Ordering,
        loc: &'static Location<'static>,
    ) {
        let mut g = self.turn(me, OpDesc { what: store_name(ord), loc });
        let id = self.atomic_id(&mut g, ids, init);
        let sync = if is_release(ord) {
            g.threads[me].clock.clone()
        } else {
            VClock::new()
        };
        self.push_store(&mut g, me, id, val, sync);
    }

    /// A read-modify-write: always reads the newest store (RMW
    /// atomicity), continues the location's release sequence even when
    /// relaxed, and adds acquire/release clock edges per `ord`.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        ids: &StdAtomicU64,
        init: u64,
        ord: Ordering,
        loc: &'static Location<'static>,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let mut g = self.turn(me, OpDesc { what: rmw_name(ord), loc });
        let id = self.atomic_id(&mut g, ids, init);
        let latest = g.atomics[id].history.last().unwrap().clone();
        if is_acquire(ord) {
            g.threads[me].clock.join(&latest.sync);
        }
        // C++20 release sequences: an RMW keeps the chain alive; a
        // release RMW additionally contributes its own clock.
        let mut sync = latest.sync.clone();
        if is_release(ord) {
            sync.join(&g.threads[me].clock);
        }
        let new_val = f(latest.val);
        self.push_store(&mut g, me, id, new_val, sync);
        latest.val
    }

    /// Compare-exchange: an RMW on success, a load of the newest store on
    /// failure (never spuriously fails — documented shim semantics).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        &self,
        me: usize,
        ids: &StdAtomicU64,
        init: u64,
        cur: u64,
        new: u64,
        succ: Ordering,
        fail: Ordering,
        loc: &'static Location<'static>,
    ) -> Result<u64, u64> {
        let mut g = self.turn(me, OpDesc { what: "cas", loc });
        let id = self.atomic_id(&mut g, ids, init);
        let latest = g.atomics[id].history.last().unwrap().clone();
        if latest.val == cur {
            if is_acquire(succ) {
                g.threads[me].clock.join(&latest.sync);
            }
            let mut sync = latest.sync.clone();
            if is_release(succ) {
                sync.join(&g.threads[me].clock);
            }
            self.push_store(&mut g, me, id, new, sync);
            Ok(cur)
        } else {
            if is_acquire(fail) {
                g.threads[me].clock.join(&latest.sync);
            }
            g.threads[me].seen.insert(id, latest.stamp);
            g.threads[me].last_load_stale = false;
            g.threads[me].clock.tick(me);
            Err(latest.val)
        }
    }

    fn push_store(&self, g: &mut ExecInner, me: usize, id: usize, val: u64, sync: VClock) {
        g.store_stamp += 1;
        let stamp = g.store_stamp;
        let epoch = g.threads[me].clock.get(me);
        let hist = &mut g.atomics[id].history;
        hist.push(StoreRec {
            val,
            stamp,
            writer: me,
            writer_epoch: epoch,
            sync,
        });
        let cap = g.cfg.history.max(2);
        if hist.len() > cap {
            let drop_n = hist.len() - cap;
            hist.drain(..drop_n);
        }
        g.threads[me].seen.insert(id, stamp);
        g.threads[me].last_load_stale = false;
        g.threads[me].clock.tick(me);
        // A store may change any spin-loop condition: release spinners.
        for t in 0..g.threads.len() {
            if let Status::BlockedSpin { seen } = g.threads[t].status {
                if stamp > seen {
                    g.threads[t].status = Status::Parked;
                }
            }
        }
    }

    // ---- tracked cells ----

    /// A tracked non-atomic access; reports a data race when unordered
    /// with a previous conflicting access.
    pub(crate) fn cell_access(
        &self,
        me: usize,
        ids: &StdAtomicU64,
        write: bool,
        loc: &'static Location<'static>,
    ) {
        let what = if write { "cell-write" } else { "cell-read" };
        let mut g = self.turn(me, OpDesc { what, loc });
        let id = self.cell_id(&mut g, ids);
        let step = g.steps.len().saturating_sub(1);
        let my_epoch = g.threads[me].clock.get(me);
        let clock = g.threads[me].clock.clone();
        let mut race: Option<(CellAccess, &'static str)> = None;
        if let Some(w) = &g.cells[id].write {
            if w.tid != me && !clock.has_seen(w.tid, w.epoch) {
                race = Some((w.clone(), "write"));
            }
        }
        if write && race.is_none() {
            for r in &g.cells[id].reads {
                if r.tid != me && !clock.has_seen(r.tid, r.epoch) {
                    race = Some((r.clone(), "read"));
                    break;
                }
            }
        }
        if let Some((prev, prev_kind)) = race {
            let msg = format!(
                "data race on tracked cell c{id}: {prev_kind} by T{} @ {}:{} (step {}) is unordered with {} by T{} @ {}:{} (step {})",
                prev.tid,
                trim_path(prev.loc.file()),
                prev.loc.line(),
                prev.step,
                if write { "write" } else { "read" },
                me,
                trim_path(loc.file()),
                loc.line(),
                step,
            );
            self.fail(&mut g, FailureKind::DataRace, msg);
            drop(g);
            self.abort_unwind();
        }
        let access = CellAccess {
            tid: me,
            epoch: my_epoch,
            loc,
            step,
        };
        if write {
            g.cells[id].write = Some(access);
            g.cells[id].reads.clear();
        } else {
            g.cells[id].reads.retain(|r| r.tid != me);
            g.cells[id].reads.push(access);
        }
        g.threads[me].clock.tick(me);
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<String>()
        .map(|s| s.clone())
        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Re-export of the std ordering used across the shim layer.
pub use std::sync::atomic::Ordering;

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn load_name(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "load.relaxed",
        Ordering::Acquire => "load.acquire",
        Ordering::SeqCst => "load.seqcst",
        _ => "load",
    }
}

fn store_name(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "store.relaxed",
        Ordering::Release => "store.release",
        Ordering::SeqCst => "store.seqcst",
        _ => "store",
    }
}

fn rmw_name(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "rmw.relaxed",
        Ordering::Acquire => "rmw.acquire",
        Ordering::Release => "rmw.release",
        Ordering::AcqRel => "rmw.acqrel",
        Ordering::SeqCst => "rmw.seqcst",
        _ => "rmw",
    }
}

// ---- drivers ----

/// Runs one execution of `f` with the given choice prefix / source.
/// Returns the logged steps and any failure.
fn run_once<F>(
    cfg: &Config,
    prefix: Vec<usize>,
    source: ChoiceSource,
    seed: Option<u64>,
    f: &Arc<F>,
) -> (Vec<Step>, Option<Failure>)
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Execution::new(cfg.clone(), prefix, source, seed));
    {
        let mut g = lock_inner(&exec.inner);
        let mut clock = VClock::new();
        clock.tick(0);
        g.threads.push(ThreadState::new(
            clock,
            OpDesc {
                what: "start",
                loc: Location::caller(),
            },
        ));
        g.live = 1;
        g.running = 0;
    }
    let body = Arc::clone(f);
    exec.run_virtual(0, Box::new(move || body()));
    // Wait for completion, then reap every carrier thread.
    {
        let mut g = lock_inner(&exec.inner);
        while !g.all_done {
            g = wait_cv(&exec.cv, g);
        }
    }
    loop {
        let hs: Vec<_> = std::mem::take(&mut *lock_inner(&exec.handles));
        if hs.is_empty() {
            break;
        }
        for h in hs {
            let _ = h.join();
        }
    }
    let g = lock_inner(&exec.inner);
    (g.steps.clone(), g.failure.clone())
}

/// Bounded-exhaustive DFS over schedules (and read-from choices), in
/// choice-log order: rerun with the longest prefix whose last step still
/// has an untried alternative.
pub fn explore<F>(cfg: &Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let (steps, failure) = run_once(cfg, prefix.clone(), ChoiceSource::First, None, &f);
        schedules += 1;
        if failure.is_some() {
            return Report {
                schedules,
                exhaustive: false,
                failure,
            };
        }
        let mut next = None;
        for i in (0..steps.len()).rev() {
            if steps[i].chosen + 1 < steps[i].nchoices {
                next = Some(i);
                break;
            }
        }
        match next {
            None => {
                return Report {
                    schedules,
                    exhaustive: true,
                    failure: None,
                }
            }
            Some(i) => {
                prefix = steps[..i].iter().map(|s| s.chosen).collect();
                prefix.push(steps[i].chosen + 1);
            }
        }
        if schedules >= cfg.max_schedules {
            return Report {
                schedules,
                exhaustive: false,
                failure: None,
            };
        }
    }
}

/// Seeded random schedule sampling: `samples` executions with per-sample
/// seeds derived from `base_seed` (SplitMix64 stream). A failure carries
/// its sample seed; rerunning with that exact seed (e.g. via
/// `FUN3D_CHECK_SEED`) reproduces the schedule bit-identically.
pub fn sample<F>(cfg: &Config, samples: usize, base_seed: u64, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut seeder = base_seed;
    for i in 0..samples {
        let seed = splitmix64(&mut seeder);
        let (_, failure) =
            run_once(cfg, Vec::new(), ChoiceSource::Rng(seed), Some(seed), &f);
        if failure.is_some() {
            return Report {
                schedules: i + 1,
                exhaustive: false,
                failure,
            };
        }
    }
    Report {
        schedules: samples,
        exhaustive: false,
        failure: None,
    }
}

/// Runs exactly one execution with `seed` (the replay path behind
/// `FUN3D_CHECK_SEED`).
pub fn replay_seed<F>(cfg: &Config, seed: u64, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let (_, failure) = run_once(cfg, Vec::new(), ChoiceSource::Rng(seed), Some(seed), &f);
    Report {
        schedules: 1,
        exhaustive: false,
        failure,
    }
}
