//! Shim atomics and tracked cells.
//!
//! Drop-in stand-ins for `std::sync::atomic::{AtomicUsize, AtomicU64,
//! AtomicBool}` plus a loom-style [`ShimCell`] over `UnsafeCell`. When
//! the calling OS thread is a virtual thread of an active model
//! execution, every operation becomes a schedule point routed through
//! the engine (which tracks modification order, release/acquire clock
//! edges, and happens-before for cells). On any other thread the types
//! behave exactly like their std counterparts, so code ported onto the
//! shim still runs correctly in ordinary `cargo test` runs — even when
//! the whole workspace is compiled with `--cfg fun3d_check`.
//!
//! Model-mode caveat (documented under-approximation of the C++20
//! model): only `Relaxed` **loads** explore stale values; acquire and
//! SeqCst loads read the coherence-newest store, and `compare_exchange`
//! never fails spuriously. This makes the checker *sound for the
//! protocols in this workspace* (whose bugs are missing release/acquire
//! edges and torn publications) without the full read-modify-order
//! search a complete C++20 checker needs.
//!
//! One rule inherited from the engine's per-execution metadata
//! registration: shim objects used inside a model body must be
//! **constructed inside the model closure** (a fresh object per
//! execution). Reusing one object across executions would replay a
//! mutated fallback value as the initial value.

use crate::engine;
use std::cell::UnsafeCell;
use std::panic::Location;
use std::sync::atomic::AtomicU64 as StdAtomicU64;

pub use std::sync::atomic::Ordering;

/// Shared routing core: `v` carries the value for fallback (no model)
/// mode, `ids` caches this object's per-execution metadata id, packed as
/// `(generation << 32) | (id + 1)` so stale generations re-register.
struct Inner {
    v: StdAtomicU64,
    ids: StdAtomicU64,
}

impl Inner {
    const fn new(v: u64) -> Inner {
        Inner {
            v: StdAtomicU64::new(v),
            ids: StdAtomicU64::new(0),
        }
    }

    #[track_caller]
    fn load(&self, ord: Ordering) -> u64 {
        match engine::current() {
            Some((e, me)) => {
                e.atomic_load(me, &self.ids, self.v.load(Ordering::Relaxed), ord, Location::caller())
            }
            None => self.v.load(ord),
        }
    }

    #[track_caller]
    fn store(&self, val: u64, ord: Ordering) {
        match engine::current() {
            Some((e, me)) => e.atomic_store(
                me,
                &self.ids,
                self.v.load(Ordering::Relaxed),
                val,
                ord,
                Location::caller(),
            ),
            None => self.v.store(val, ord),
        }
    }

    #[track_caller]
    fn rmw(&self, ord: Ordering, std_op: impl FnOnce(&StdAtomicU64) -> u64, f: impl FnOnce(u64) -> u64) -> u64 {
        match engine::current() {
            Some((e, me)) => e.atomic_rmw(
                me,
                &self.ids,
                self.v.load(Ordering::Relaxed),
                ord,
                Location::caller(),
                f,
            ),
            None => std_op(&self.v),
        }
    }

    #[track_caller]
    fn compare_exchange(
        &self,
        cur: u64,
        new: u64,
        succ: Ordering,
        fail: Ordering,
    ) -> Result<u64, u64> {
        match engine::current() {
            Some((e, me)) => e.atomic_cas(
                me,
                &self.ids,
                self.v.load(Ordering::Relaxed),
                cur,
                new,
                succ,
                fail,
                Location::caller(),
            ),
            None => self.v.compare_exchange(cur, new, succ, fail),
        }
    }
}

/// `std::sync::atomic::AtomicU64` stand-in.
pub struct AtomicU64 {
    inner: Inner,
}

/// `std::sync::atomic::AtomicUsize` stand-in.
pub struct AtomicUsize {
    inner: Inner,
}

/// `std::sync::atomic::AtomicBool` stand-in.
pub struct AtomicBool {
    inner: Inner,
}

impl AtomicU64 {
    pub const fn new(v: u64) -> AtomicU64 {
        AtomicU64 { inner: Inner::new(v) }
    }

    #[track_caller]
    pub fn load(&self, ord: Ordering) -> u64 {
        self.inner.load(ord)
    }

    #[track_caller]
    pub fn store(&self, val: u64, ord: Ordering) {
        self.inner.store(val, ord)
    }

    #[track_caller]
    pub fn swap(&self, val: u64, ord: Ordering) -> u64 {
        self.inner.rmw(ord, |a| a.swap(val, ord), |_| val)
    }

    #[track_caller]
    pub fn fetch_add(&self, d: u64, ord: Ordering) -> u64 {
        self.inner
            .rmw(ord, |a| a.fetch_add(d, ord), |v| v.wrapping_add(d))
    }

    #[track_caller]
    pub fn fetch_sub(&self, d: u64, ord: Ordering) -> u64 {
        self.inner
            .rmw(ord, |a| a.fetch_sub(d, ord), |v| v.wrapping_sub(d))
    }

    #[track_caller]
    pub fn fetch_or(&self, d: u64, ord: Ordering) -> u64 {
        self.inner.rmw(ord, |a| a.fetch_or(d, ord), |v| v | d)
    }

    #[track_caller]
    pub fn fetch_and(&self, d: u64, ord: Ordering) -> u64 {
        self.inner.rmw(ord, |a| a.fetch_and(d, ord), |v| v & d)
    }

    #[track_caller]
    pub fn compare_exchange(
        &self,
        cur: u64,
        new: u64,
        succ: Ordering,
        fail: Ordering,
    ) -> Result<u64, u64> {
        self.inner.compare_exchange(cur, new, succ, fail)
    }

    /// Shim semantics: never fails spuriously (same as the strong form).
    #[track_caller]
    pub fn compare_exchange_weak(
        &self,
        cur: u64,
        new: u64,
        succ: Ordering,
        fail: Ordering,
    ) -> Result<u64, u64> {
        self.inner.compare_exchange(cur, new, succ, fail)
    }

    pub fn into_inner(self) -> u64 {
        self.inner.v.into_inner()
    }
}

impl AtomicUsize {
    pub const fn new(v: usize) -> AtomicUsize {
        AtomicUsize { inner: Inner::new(v as u64) }
    }

    #[track_caller]
    pub fn load(&self, ord: Ordering) -> usize {
        self.inner.load(ord) as usize
    }

    #[track_caller]
    pub fn store(&self, val: usize, ord: Ordering) {
        self.inner.store(val as u64, ord)
    }

    #[track_caller]
    pub fn swap(&self, val: usize, ord: Ordering) -> usize {
        self.inner.rmw(ord, |a| a.swap(val as u64, ord), |_| val as u64) as usize
    }

    #[track_caller]
    pub fn fetch_add(&self, d: usize, ord: Ordering) -> usize {
        self.inner
            .rmw(ord, |a| a.fetch_add(d as u64, ord), |v| v.wrapping_add(d as u64)) as usize
    }

    #[track_caller]
    pub fn fetch_sub(&self, d: usize, ord: Ordering) -> usize {
        self.inner
            .rmw(ord, |a| a.fetch_sub(d as u64, ord), |v| v.wrapping_sub(d as u64)) as usize
    }

    #[track_caller]
    pub fn compare_exchange(
        &self,
        cur: usize,
        new: usize,
        succ: Ordering,
        fail: Ordering,
    ) -> Result<usize, usize> {
        self.inner
            .compare_exchange(cur as u64, new as u64, succ, fail)
            .map(|v| v as usize)
            .map_err(|v| v as usize)
    }

    /// Shim semantics: never fails spuriously (same as the strong form).
    #[track_caller]
    pub fn compare_exchange_weak(
        &self,
        cur: usize,
        new: usize,
        succ: Ordering,
        fail: Ordering,
    ) -> Result<usize, usize> {
        self.compare_exchange(cur, new, succ, fail)
    }

    pub fn into_inner(self) -> usize {
        self.inner.v.into_inner() as usize
    }
}

impl AtomicBool {
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool { inner: Inner::new(v as u64) }
    }

    #[track_caller]
    pub fn load(&self, ord: Ordering) -> bool {
        self.inner.load(ord) != 0
    }

    #[track_caller]
    pub fn store(&self, val: bool, ord: Ordering) {
        self.inner.store(val as u64, ord)
    }

    #[track_caller]
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        self.inner.rmw(ord, |a| a.swap(val as u64, ord), |_| val as u64) != 0
    }

    pub fn into_inner(self) -> bool {
        self.inner.v.into_inner() != 0
    }
}

impl std::fmt::Debug for AtomicU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicU64").finish_non_exhaustive()
    }
}
impl std::fmt::Debug for AtomicUsize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicUsize").finish_non_exhaustive()
    }
}
impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool").finish_non_exhaustive()
    }
}

impl Default for AtomicU64 {
    fn default() -> AtomicU64 {
        AtomicU64::new(0)
    }
}
impl Default for AtomicUsize {
    fn default() -> AtomicUsize {
        AtomicUsize::new(0)
    }
}
impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

/// A tracked `UnsafeCell`: non-atomic data whose accesses the checker
/// subjects to vector-clock race detection. `with` announces a read and
/// `with_mut` a write *before* touching the data; because exactly one
/// virtual thread runs at a time, the underlying accesses are physically
/// serialized — a detected race is a model-level race (no happens-before
/// edge), reported as a failure rather than executed as real UB.
///
/// A zero-sized `ShimCell<()>` can bracket accesses to data that must
/// stay in its original layout (e.g. cache-line-padded slot arrays): the
/// tag cell carries the race tracking while the payload stays put.
pub struct ShimCell<T> {
    ids: StdAtomicU64,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Send for ShimCell<T> {}
unsafe impl<T: Send> Sync for ShimCell<T> {}

impl<T> ShimCell<T> {
    pub const fn new(v: T) -> ShimCell<T> {
        ShimCell {
            ids: StdAtomicU64::new(0),
            data: UnsafeCell::new(v),
        }
    }

    /// Read access. The pointer must not escape the closure.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some((e, me)) = engine::current() {
            e.cell_access(me, &self.ids, false, Location::caller());
        }
        f(self.data.get())
    }

    /// Write access. The pointer must not escape the closure.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some((e, me)) = engine::current() {
            e.cell_access(me, &self.ids, true, Location::caller());
        }
        f(self.data.get())
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for ShimCell<T> {
    fn default() -> ShimCell<T> {
        ShimCell::new(T::default())
    }
}

impl<T> std::fmt::Debug for ShimCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ShimCell").finish_non_exhaustive()
    }
}

/// A spin-loop hint that the scheduler understands: in a model, the
/// calling virtual thread is descheduled until another thread performs
/// an atomic store it has not yet observed (so spin loops terminate
/// under exhaustive exploration, and all-threads-spinning is reported as
/// a livelock). Outside a model this is `std::hint::spin_loop()`.
#[track_caller]
pub fn spin_hint() {
    match engine::current() {
        Some((e, me)) => e.spin_wait(me, Location::caller()),
        None => std::hint::spin_loop(),
    }
}

/// Like [`spin_hint`] but yields the OS thread in fallback mode — for
/// long waits (doorbell idle loops) rather than bounded spins.
#[track_caller]
pub fn yield_now() {
    match engine::current() {
        Some((e, me)) => e.spin_wait(me, Location::caller()),
        None => std::thread::yield_now(),
    }
}
