//! Cache-blocked edge tiling with inter-tile coloring.
//!
//! The paper's three write-conflict strategies (atomics, owner-writes
//! replication, per-edge coloring) all stream vertex data past the core
//! with near-zero reuse: every edge gathers its two endpoint states and
//! gradients from DRAM-resident arrays. Tiling is the next rung
//! (Sulyok et al., "Locality Optimized Unstructured Mesh Algorithms on
//! GPUs", adapted here to CPU cache blocking): group edges into *tiles*
//! whose unique-vertex working set fits a core's private L2, stage that
//! working set once into a dense scratch pad, let every edge of the tile
//! read and accumulate in the scratch pad (each staged vertex is reused
//! by all its intra-tile edges), then scatter the accumulated updates
//! back. Write conflicts move from the edge level to the tile level:
//! tiles sharing a vertex get different colors, and same-color tiles are
//! vertex-disjoint so a thread pool can run one color's tiles in
//! parallel with no atomics and no replicated work.
//!
//! The tiler is growth-based: starting from a seed edge it absorbs
//! incident edges breadth-first (BFS preserves the RCM locality of the
//! input ordering) until the vertex budget derived from
//! [`MachineSpec::l2_bytes`] is reached, then runs a closure sweep that
//! claims every remaining unassigned edge whose endpoints are *both*
//! already staged — those edges are free: they add reuse without adding
//! working set.

use fun3d_machine::MachineSpec;

/// Bytes of scratch-pad payload staged per unique vertex of a tile:
/// 4 state components + 12 gradient components + 4 residual accumulators,
/// all f64 (the flux kernel's per-vertex footprint; the gradient kernel
/// stages less and so fits a fortiori).
pub const TILE_BYTES_PER_VERTEX: usize = (4 + 12 + 4) * 8;

/// Tiler parameters.
#[derive(Clone, Copy, Debug)]
pub struct TilingConfig {
    /// Scratch-pad budget per tile, bytes. The tile's unique-vertex
    /// count is capped at `target_bytes / bytes_per_vertex`.
    pub target_bytes: usize,
    /// Staged payload per unique vertex, bytes.
    pub bytes_per_vertex: usize,
}

impl TilingConfig {
    /// Budget derived from a machine description: half the private L2,
    /// leaving the other half for the edge stream (geometry, normals,
    /// index pairs) and incidental traffic.
    pub fn for_machine(m: &MachineSpec) -> TilingConfig {
        TilingConfig {
            target_bytes: m.l2_bytes / 2,
            bytes_per_vertex: TILE_BYTES_PER_VERTEX,
        }
    }

    /// Explicit budget (tests, ablations).
    pub fn with_target_bytes(target_bytes: usize) -> TilingConfig {
        TilingConfig {
            target_bytes,
            bytes_per_vertex: TILE_BYTES_PER_VERTEX,
        }
    }

    /// Unique-vertex cap per tile. Clamped to 2 so a single edge always
    /// fits: a budget smaller than one edge's endpoint pair degenerates
    /// to one-edge tiles rather than an unbuildable tiling.
    pub fn max_tile_vertices(&self) -> usize {
        (self.target_bytes / self.bytes_per_vertex.max(1)).max(2)
    }
}

/// One edge tile: a set of edges plus the dense local remap of the
/// vertices they touch.
#[derive(Clone, Debug)]
pub struct Tile {
    /// Global edge ids, in intra-tile processing order (BFS growth order
    /// followed by the closure sweep's free edges).
    pub edges: Vec<u32>,
    /// Local-to-global vertex map: scratch slot `l` stages global vertex
    /// `verts[l]`.
    pub verts: Vec<u32>,
    /// Per tile edge, the endpoints as *local* scratch-slot indices,
    /// same order as `edges`.
    pub local: Vec<[u32; 2]>,
}

impl Tile {
    /// Edges per unique vertex — the locality win of this tile. A
    /// streaming kernel pays two vertex gathers per edge; a tile pays
    /// one stage + one scatter per unique vertex, so reuse > 1 means
    /// the scratch pad is amortized.
    pub fn reuse_factor(&self) -> f64 {
        self.edges.len() as f64 / self.verts.len().max(1) as f64
    }
}

/// A complete tiling of an edge list: tiles covering every edge exactly
/// once, plus a proper inter-tile coloring (same-color tiles share no
/// vertex).
#[derive(Clone, Debug)]
pub struct EdgeTiling {
    /// The tiles, in construction order.
    pub tiles: Vec<Tile>,
    /// `color_tiles[c]` lists the tile indices of color `c`; within a
    /// color, tiles are vertex-disjoint. Every color class is non-empty
    /// by construction.
    pub color_tiles: Vec<Vec<u32>>,
    /// Tile color, indexed by tile.
    pub tile_color: Vec<u32>,
    /// Color-major edge renumbering: `perm[p]` is the original id of
    /// the edge at permuted position `p`. Tiles are laid out color by
    /// color, each tile's edges contiguous and in intra-tile order, so
    /// geometry arrays permuted by this map are walked strictly
    /// sequentially by the tiled kernels (no per-edge id gather).
    pub perm: Vec<u32>,
    /// Per tile, the start of its contiguous edge range in the
    /// permuted numbering (`tile_start[t] .. tile_start[t] +
    /// tiles[t].edges.len()`).
    pub tile_start: Vec<u32>,
    /// Edges covered (== input edge count).
    pub nedges: usize,
    /// Vertices of the tiled graph.
    pub nvertices: usize,
    /// Vertex budget the tiler ran with.
    pub max_tile_vertices: usize,
}

impl EdgeTiling {
    /// Builds a tiling of `edges` over `nvertices` vertices under `cfg`.
    ///
    /// Deterministic: seeds are taken in edge order (so an RCM-ordered
    /// edge list yields spatially coherent tiles), growth is plain BFS,
    /// and the coloring is first-fit over tiles in construction order.
    pub fn build(nvertices: usize, edges: &[[u32; 2]], cfg: &TilingConfig) -> EdgeTiling {
        let max_verts = cfg.max_tile_vertices();
        let nedges = edges.len();

        // Vertex -> incident edges, CSR.
        let mut deg = vec![0u32; nvertices];
        for e in edges {
            deg[e[0] as usize] += 1;
            deg[e[1] as usize] += 1;
        }
        let mut off = vec![0u32; nvertices + 1];
        for v in 0..nvertices {
            off[v + 1] = off[v] + deg[v];
        }
        let mut inc = vec![0u32; off[nvertices] as usize];
        let mut cursor = off.clone();
        for (eid, e) in edges.iter().enumerate() {
            for &v in e {
                inc[cursor[v as usize] as usize] = eid as u32;
                cursor[v as usize] += 1;
            }
        }

        // Generation-stamped membership marks (reset-free between tiles).
        let mut vert_stamp = vec![u32::MAX; nvertices];
        let mut local_of = vec![0u32; nvertices];
        let mut assigned = vec![false; nedges];
        let mut tiles: Vec<Tile> = Vec::new();

        for seed in 0..nedges {
            if assigned[seed] {
                continue;
            }
            let tid = tiles.len() as u32;
            let mut tile = Tile {
                edges: Vec::new(),
                verts: Vec::new(),
                local: Vec::new(),
            };
            let mut frontier: std::collections::VecDeque<u32> = std::collections::VecDeque::new();

            // Claims an edge: records it with local endpoint indices,
            // staging any endpoint not yet in the tile and enqueueing
            // the newly reachable incident edges.
            fn take(
                eid: u32,
                tid: u32,
                edges: &[[u32; 2]],
                off: &[u32],
                inc: &[u32],
                assigned: &mut [bool],
                vert_stamp: &mut [u32],
                local_of: &mut [u32],
                tile: &mut Tile,
                frontier: &mut std::collections::VecDeque<u32>,
            ) {
                assigned[eid as usize] = true;
                let mut loc = [0u32; 2];
                for (k, &v) in edges[eid as usize].iter().enumerate() {
                    let vu = v as usize;
                    if vert_stamp[vu] != tid {
                        vert_stamp[vu] = tid;
                        local_of[vu] = tile.verts.len() as u32;
                        tile.verts.push(v);
                        for &ie in &inc[off[vu] as usize..off[vu + 1] as usize] {
                            if !assigned[ie as usize] {
                                frontier.push_back(ie);
                            }
                        }
                    }
                    loc[k] = local_of[vu];
                }
                tile.edges.push(eid);
                tile.local.push(loc);
            }

            // Seed always fits (max_verts >= 2); grow BFS while the next
            // edge's new endpoints stay within budget.
            take(
                seed as u32,
                tid,
                edges,
                &off,
                &inc,
                &mut assigned,
                &mut vert_stamp,
                &mut local_of,
                &mut tile,
                &mut frontier,
            );
            while let Some(eid) = frontier.pop_front() {
                if assigned[eid as usize] {
                    continue;
                }
                let e = edges[eid as usize];
                let new = e
                    .iter()
                    .filter(|&&v| vert_stamp[v as usize] != tid)
                    .count();
                if tile.verts.len() + new > max_verts {
                    continue; // over budget: leave for a later tile
                }
                take(
                    eid,
                    tid,
                    edges,
                    &off,
                    &inc,
                    &mut assigned,
                    &mut vert_stamp,
                    &mut local_of,
                    &mut tile,
                    &mut frontier,
                );
            }

            // Closure sweep: any unassigned edge with both endpoints
            // already staged costs no working set — pure extra reuse.
            // (BFS already absorbs most of these; this catches edges
            // skipped while their second endpoint was still unstaged.)
            for l in 0..tile.verts.len() {
                let vu = tile.verts[l] as usize;
                for ii in off[vu] as usize..off[vu + 1] as usize {
                    let ie = inc[ii];
                    let e = edges[ie as usize];
                    if !assigned[ie as usize]
                        && vert_stamp[e[0] as usize] == tid
                        && vert_stamp[e[1] as usize] == tid
                    {
                        take(
                            ie,
                            tid,
                            edges,
                            &off,
                            &inc,
                            &mut assigned,
                            &mut vert_stamp,
                            &mut local_of,
                            &mut tile,
                            &mut frontier,
                        );
                    }
                }
            }
            // Restore ascending edge order inside the tile (BFS claims
            // edges in frontier order): the compute loop then walks the
            // geometry arrays in quasi-sequential runs the hardware
            // prefetcher can follow, instead of BFS-scattered gathers.
            let mut order: Vec<u32> = (0..tile.edges.len() as u32).collect();
            order.sort_unstable_by_key(|&i| tile.edges[i as usize]);
            tile.edges = order.iter().map(|&i| tile.edges[i as usize]).collect();
            tile.local = order.iter().map(|&i| tile.local[i as usize]).collect();
            // Same treatment for the scratch slots: ascending global
            // vertex ids turn the stage loop's reads of the global
            // q/grad arrays into quasi-sequential runs too.
            let mut vorder: Vec<u32> = (0..tile.verts.len() as u32).collect();
            vorder.sort_unstable_by_key(|&i| tile.verts[i as usize]);
            let mut new_slot = vec![0u32; tile.verts.len()];
            for (new, &old) in vorder.iter().enumerate() {
                new_slot[old as usize] = new as u32;
            }
            tile.verts = vorder.iter().map(|&i| tile.verts[i as usize]).collect();
            for l in tile.local.iter_mut() {
                l[0] = new_slot[l[0] as usize];
                l[1] = new_slot[l[1] as usize];
            }
            tiles.push(tile);
        }

        // First-fit inter-tile coloring: a tile's free colors are those
        // unused by every vertex it touches (same bitmask idiom as
        // `coloring::color_edges`, but over tiles — tiles per vertex is
        // bounded by vertex degree, so 512 colors is far beyond need).
        const WORDS: usize = 8;
        let mut used = vec![[0u64; WORDS]; nvertices];
        let mut tile_color = vec![0u32; tiles.len()];
        let mut ncolors = 0usize;
        for (t, tile) in tiles.iter().enumerate() {
            let mut mask = [0u64; WORDS];
            for &v in &tile.verts {
                for w in 0..WORDS {
                    mask[w] |= used[v as usize][w];
                }
            }
            let mut c = None;
            for (w, &m) in mask.iter().enumerate() {
                let free = !m;
                if free != 0 {
                    c = Some((w * 64 + free.trailing_zeros() as usize) as u32);
                    break;
                }
            }
            let c = c.expect("more than 512 tile colors: degenerate tiling");
            for &v in &tile.verts {
                used[v as usize][(c / 64) as usize] |= 1 << (c % 64);
            }
            tile_color[t] = c;
            ncolors = ncolors.max(c as usize + 1);
        }
        let mut color_tiles = vec![Vec::new(); ncolors];
        for (t, &c) in tile_color.iter().enumerate() {
            color_tiles[c as usize].push(t as u32);
        }

        // Color-major renumbering: concatenate tile edge lists in the
        // exact order the (serial and pooled) drivers visit them.
        let mut perm = Vec::with_capacity(nedges);
        let mut tile_start = vec![0u32; tiles.len()];
        for class in &color_tiles {
            for &t in class {
                tile_start[t as usize] = perm.len() as u32;
                perm.extend_from_slice(&tiles[t as usize].edges);
            }
        }
        debug_assert_eq!(perm.len(), nedges);

        EdgeTiling {
            tiles,
            color_tiles,
            tile_color,
            perm,
            tile_start,
            nedges,
            nvertices,
            max_tile_vertices: max_verts,
        }
    }

    /// Number of tiles.
    pub fn ntiles(&self) -> usize {
        self.tiles.len()
    }

    /// Number of tile colors.
    pub fn ncolors(&self) -> usize {
        self.color_tiles.len()
    }

    /// Total scratch-pad slots across all tiles: the sum of per-tile
    /// unique-vertex counts. Each slot is one stage + one scatter of
    /// vertex data — the tiled strategy's entire vertex DRAM traffic.
    pub fn vertex_slots(&self) -> usize {
        self.tiles.iter().map(|t| t.verts.len()).sum()
    }

    /// Largest tile's unique-vertex count (scratch-pad allocation size).
    pub fn max_tile_verts(&self) -> usize {
        self.tiles.iter().map(|t| t.verts.len()).max().unwrap_or(0)
    }

    /// Measured aggregate reuse factor: edges per staged vertex slot.
    /// The streaming kernels gather 2 vertices per edge, so the vertex
    /// traffic shrinks by `2 * reuse_factor()` relative to streaming
    /// (ignoring the cache reuse streaming already gets from RCM).
    pub fn reuse_factor(&self) -> f64 {
        self.nedges as f64 / self.vertex_slots().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::MeshPreset;

    fn tiny_edges() -> (usize, Vec<[u32; 2]>) {
        let m = MeshPreset::Tiny.build();
        (m.nvertices(), m.edges())
    }

    fn check_invariants(nv: usize, edges: &[[u32; 2]], tl: &EdgeTiling) {
        // Every edge appears in exactly one tile, with a faithful remap.
        let mut seen = vec![false; edges.len()];
        for tile in &tl.tiles {
            assert_eq!(tile.edges.len(), tile.local.len());
            assert!(!tile.edges.is_empty(), "empty tile");
            for (k, &eid) in tile.edges.iter().enumerate() {
                assert!(!seen[eid as usize], "edge {eid} tiled twice");
                seen[eid as usize] = true;
                let e = edges[eid as usize];
                let l = tile.local[k];
                assert_eq!(tile.verts[l[0] as usize], e[0]);
                assert_eq!(tile.verts[l[1] as usize], e[1]);
            }
            // Local map has no duplicate globals.
            let uniq: std::collections::HashSet<u32> = tile.verts.iter().copied().collect();
            assert_eq!(uniq.len(), tile.verts.len());
        }
        assert!(seen.iter().all(|&s| s), "uncovered edge");
        // Proper coloring: same-color tiles are vertex-disjoint, and no
        // color class is empty.
        for class in &tl.color_tiles {
            assert!(!class.is_empty(), "empty color class");
            let mut verts = std::collections::HashSet::new();
            for &t in class {
                for &v in &tl.tiles[t as usize].verts {
                    assert!(verts.insert(v), "vertex {v} shared within a color");
                }
            }
        }
        assert_eq!(tl.nedges, edges.len());
        assert_eq!(tl.nvertices, nv);
        // The color-major renumbering is a permutation, and each tile's
        // range in it reproduces the tile's own edge list.
        let mut hit = vec![false; edges.len()];
        for &e in &tl.perm {
            assert!(!hit[e as usize], "edge {e} twice in perm");
            hit[e as usize] = true;
        }
        assert_eq!(tl.tile_start.len(), tl.tiles.len());
        for (t, tile) in tl.tiles.iter().enumerate() {
            let s = tl.tile_start[t] as usize;
            assert_eq!(&tl.perm[s..s + tile.edges.len()], &tile.edges[..]);
        }
    }

    #[test]
    fn covers_and_colors_tiny_mesh() {
        let (nv, edges) = tiny_edges();
        let tl = EdgeTiling::build(nv, &edges, &TilingConfig::with_target_bytes(8192));
        check_invariants(nv, &edges, &tl);
        assert!(tl.ntiles() > 1);
        // Budget respected: 8192 / 160 = 51 vertex slots per tile.
        for tile in &tl.tiles {
            assert!(tile.verts.len() <= 51);
        }
        // A mesh tile should reuse each staged vertex more than once.
        assert!(tl.reuse_factor() > 1.0, "reuse {}", tl.reuse_factor());
    }

    #[test]
    fn l2_budget_from_machine() {
        let (nv, edges) = tiny_edges();
        let m = fun3d_machine::MachineSpec::xeon_e5_2690v2();
        let cfg = TilingConfig::for_machine(&m);
        assert_eq!(cfg.max_tile_vertices(), m.l2_bytes / 2 / TILE_BYTES_PER_VERTEX);
        let tl = EdgeTiling::build(nv, &edges, &cfg);
        check_invariants(nv, &edges, &tl);
    }

    #[test]
    fn degenerate_budget_single_edge_tiles() {
        // Budget below one edge's endpoint pair: clamps to 2 vertices,
        // so every tile is a single edge and the coloring degenerates to
        // the classic per-edge coloring.
        let (nv, edges) = tiny_edges();
        let cfg = TilingConfig::with_target_bytes(1);
        assert_eq!(cfg.max_tile_vertices(), 2);
        let tl = EdgeTiling::build(nv, &edges, &cfg);
        check_invariants(nv, &edges, &tl);
        assert_eq!(tl.ntiles(), edges.len());
        assert!((tl.reuse_factor() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn huge_budget_single_tile() {
        let (nv, edges) = tiny_edges();
        let tl = EdgeTiling::build(nv, &edges, &TilingConfig::with_target_bytes(usize::MAX));
        check_invariants(nv, &edges, &tl);
        assert_eq!(tl.ntiles(), 1);
        assert_eq!(tl.ncolors(), 1);
        assert_eq!(tl.vertex_slots(), nv); // connected mesh: all staged once
    }

    #[test]
    fn empty_edge_list() {
        let tl = EdgeTiling::build(5, &[], &TilingConfig::with_target_bytes(4096));
        assert_eq!(tl.ntiles(), 0);
        assert_eq!(tl.ncolors(), 0);
        assert_eq!(tl.vertex_slots(), 0);
    }

    #[test]
    fn deterministic() {
        let (nv, edges) = tiny_edges();
        let cfg = TilingConfig::with_target_bytes(4096);
        let a = EdgeTiling::build(nv, &edges, &cfg);
        let b = EdgeTiling::build(nv, &edges, &cfg);
        assert_eq!(a.ntiles(), b.ntiles());
        for (ta, tb) in a.tiles.iter().zip(&b.tiles) {
            assert_eq!(ta.edges, tb.edges);
            assert_eq!(ta.verts, tb.verts);
        }
        assert_eq!(a.tile_color, b.tile_color);
    }

    #[test]
    fn reuse_grows_with_budget() {
        let (nv, edges) = tiny_edges();
        let small = EdgeTiling::build(nv, &edges, &TilingConfig::with_target_bytes(2048));
        let large = EdgeTiling::build(nv, &edges, &TilingConfig::with_target_bytes(32768));
        assert!(large.reuse_factor() > small.reuse_factor());
    }
}
