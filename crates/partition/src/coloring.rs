//! Greedy edge coloring.
//!
//! Edges that share no vertex can be processed concurrently without
//! conflicts — "color-wise concurrency". The paper notes this classic
//! alternative but rejects it because coloring destroys spatial locality
//! (consecutively processed edges touch unrelated vertices). We implement
//! it anyway as the ablation baseline.

/// Assigns each edge the smallest color not used by any earlier edge
/// sharing a vertex. Returns `(colors, ncolors)`; edges of equal color are
/// pairwise vertex-disjoint.
pub fn color_edges(nvertices: usize, edges: &[[u32; 2]]) -> (Vec<u32>, usize) {
    // For each vertex, the set of colors already used by incident edges,
    // kept as a bitmask vector (colors beyond 128 fall back to a scan).
    const WORDS: usize = 4; // 256 colors in the fast path
    let mut used = vec![[0u64; WORDS]; nvertices];
    let mut colors = vec![0u32; edges.len()];
    let mut ncolors = 0usize;
    for (eid, e) in edges.iter().enumerate() {
        let (a, b) = (e[0] as usize, e[1] as usize);
        let mut c = None;
        for w in 0..WORDS {
            let free = !(used[a][w] | used[b][w]);
            if free != 0 {
                c = Some((w * 64 + free.trailing_zeros() as usize) as u32);
                break;
            }
        }
        let c = c.expect("more than 256 incident edge colors: degenerate mesh");
        used[a][(c / 64) as usize] |= 1 << (c % 64);
        used[b][(c / 64) as usize] |= 1 << (c % 64);
        colors[eid] = c;
        ncolors = ncolors.max(c as usize + 1);
    }
    (colors, ncolors)
}

/// Groups edge ids by color: `groups[c]` lists the edges of color `c`.
pub fn color_groups(colors: &[u32], ncolors: usize) -> Vec<Vec<u32>> {
    let mut groups = vec![Vec::new(); ncolors];
    for (eid, &c) in colors.iter().enumerate() {
        groups[c as usize].push(eid as u32);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::MeshPreset;

    #[test]
    fn coloring_is_proper() {
        let m = MeshPreset::Tiny.build();
        let edges = m.edges();
        let (colors, ncolors) = color_edges(m.nvertices(), &edges);
        assert!(ncolors >= 1);
        // Check properness: same-colored edges share no vertex.
        let groups = color_groups(&colors, ncolors);
        for group in &groups {
            let mut seen = std::collections::HashSet::new();
            for &eid in group {
                let e = edges[eid as usize];
                assert!(seen.insert(e[0]), "vertex {} reused in color", e[0]);
                assert!(seen.insert(e[1]), "vertex {} reused in color", e[1]);
            }
        }
    }

    #[test]
    fn ncolors_at_least_max_degree() {
        // Vizing: an edge coloring needs >= max vertex degree colors.
        let m = MeshPreset::Tiny.build();
        let edges = m.edges();
        let g = m.vertex_graph();
        let (_, ncolors) = color_edges(m.nvertices(), &edges);
        assert!(ncolors >= g.max_degree());
        // Greedy uses at most 2*maxdeg - 1.
        assert!(ncolors <= 2 * g.max_degree());
    }

    #[test]
    fn groups_partition_the_edges() {
        let m = MeshPreset::Tiny.build();
        let edges = m.edges();
        let (colors, ncolors) = color_edges(m.nvertices(), &edges);
        let groups = color_groups(&colors, ncolors);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, edges.len());
    }

    #[test]
    fn star_graph_needs_degree_colors() {
        let edges = [[0u32, 1], [0, 2], [0, 3], [0, 4]];
        let (colors, ncolors) = color_edges(5, &edges);
        assert_eq!(ncolors, 4);
        let unique: std::collections::HashSet<u32> = colors.iter().copied().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn empty_graph() {
        let (colors, ncolors) = color_edges(0, &[]);
        assert!(colors.is_empty());
        assert_eq!(ncolors, 0);
    }
}
