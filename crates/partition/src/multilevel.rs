//! Multilevel k-way graph partitioning by recursive bisection.
//!
//! The same algorithm family as METIS (Karypis & Kumar [21]):
//!
//! 1. **Coarsening** — heavy-edge matching collapses matched vertex pairs,
//!    accumulating vertex and edge weights, until the graph is small;
//! 2. **Initial bisection** — greedy graph growing (BFS region growing
//!    from several random seeds, keeping the best) splits the coarsest
//!    graph near the target weights;
//! 3. **Refinement** — a Fiduccia–Mattheyses pass with rollback moves
//!    boundary vertices to reduce the cut while respecting a balance
//!    tolerance, applied at every level on the way back up;
//! 4. **Recursion** — each side is extracted as an induced subgraph and
//!    bisected again until `nparts` parts exist (non-powers of two are
//!    handled by splitting proportionally).

use crate::Partition;
use fun3d_mesh::Graph;
use fun3d_util::Rng64;

/// Tuning knobs for the multilevel partitioner.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelConfig {
    /// Stop coarsening below this many vertices.
    pub coarsest: usize,
    /// FM passes per level.
    pub fm_passes: usize,
    /// Allowed imbalance of a bisection: a side may exceed its target
    /// weight by this factor.
    pub balance_tol: f64,
    /// Number of random greedy-growing attempts for the initial bisection.
    pub init_tries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsest: 48,
            fm_passes: 4,
            balance_tol: 1.03,
            init_tries: 4,
            seed: 0x4D45_5449,
        }
    }
}

/// Partitions `graph` into `nparts` parts. Returns `part[v] ∈ 0..nparts`.
pub fn partition_graph(graph: &Graph, nparts: usize, cfg: &MultilevelConfig) -> Partition {
    assert!(nparts >= 1);
    let n = graph.nvertices();
    let mut part = vec![0u32; n];
    if nparts == 1 || n == 0 {
        return part;
    }
    let wg = WGraph {
        xadj: graph.xadj.clone(),
        adj: graph.adj.clone(),
        ewgt: vec![1; graph.adj.len()],
        vwgt: vec![1; n],
    };
    let vertices: Vec<u32> = (0..n as u32).collect();
    let mut rng = Rng64::new(cfg.seed);
    recurse(&wg, &vertices, nparts, 0, &mut part, cfg, &mut rng);
    part
}

/// Weighted CSR graph used internally across coarsening levels.
struct WGraph {
    xadj: Vec<usize>,
    adj: Vec<u32>,
    ewgt: Vec<u64>,
    vwgt: Vec<u64>,
}

impl WGraph {
    fn n(&self) -> usize {
        self.vwgt.len()
    }

    fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.adj[self.xadj[v]..self.xadj[v + 1]]
            .iter()
            .copied()
            .zip(self.ewgt[self.xadj[v]..self.xadj[v + 1]].iter().copied())
    }
}

/// Recursive bisection: assigns parts `base..base+nparts` to `vertices`
/// (ids in the *original* graph; `wg` is the induced subgraph with local
/// ids aligned to `vertices`).
fn recurse(
    wg: &WGraph,
    vertices: &[u32],
    nparts: usize,
    base: u32,
    part: &mut Partition,
    cfg: &MultilevelConfig,
    rng: &mut Rng64,
) {
    if nparts == 1 {
        for &v in vertices {
            part[v as usize] = base;
        }
        return;
    }
    let left_parts = nparts / 2;
    let right_parts = nparts - left_parts;
    let frac = left_parts as f64 / nparts as f64;
    let side = bisect(wg, frac, cfg, rng);

    // Extract induced subgraphs for both sides.
    let (lg, lverts) = induced(wg, vertices, &side, false);
    let (rg, rverts) = induced(wg, vertices, &side, true);
    recurse(&lg, &lverts, left_parts, base, part, cfg, rng);
    recurse(&rg, &rverts, right_parts, base + left_parts as u32, part, cfg, rng);
}

/// Extracts the induced subgraph of the vertices with `side[v] == which`.
/// Returns the subgraph and the original ids of its vertices.
fn induced(wg: &WGraph, vertices: &[u32], side: &[bool], which: bool) -> (WGraph, Vec<u32>) {
    let n = wg.n();
    let mut local = vec![u32::MAX; n];
    let mut orig = Vec::new();
    for v in 0..n {
        if side[v] == which {
            local[v] = orig.len() as u32;
            orig.push(vertices[v]);
        }
    }
    let mut xadj = Vec::with_capacity(orig.len() + 1);
    xadj.push(0usize);
    let mut adj = Vec::new();
    let mut ewgt = Vec::new();
    let mut vwgt = Vec::with_capacity(orig.len());
    for v in 0..n {
        if side[v] != which {
            continue;
        }
        for (u, w) in wg.neighbors(v) {
            if side[u as usize] == which {
                adj.push(local[u as usize]);
                ewgt.push(w);
            }
        }
        xadj.push(adj.len());
        vwgt.push(wg.vwgt[v]);
    }
    (WGraph { xadj, adj, ewgt, vwgt }, orig)
}

/// Multilevel bisection of a weighted graph. Returns `side[v]` with
/// `false` = left (target fraction `frac` of total weight).
fn bisect(wg: &WGraph, frac: f64, cfg: &MultilevelConfig, rng: &mut Rng64) -> Vec<bool> {
    if wg.n() <= cfg.coarsest.max(2) {
        let mut side = initial_bisection(wg, frac, cfg, rng);
        fm_refine(wg, &mut side, frac, cfg);
        return side;
    }
    // Coarsen one level.
    let (coarse, map) = coarsen(wg, rng);
    // If matching stalled, bisect directly at this level.
    if coarse.n() as f64 > 0.95 * wg.n() as f64 {
        let mut side = initial_bisection(wg, frac, cfg, rng);
        fm_refine(wg, &mut side, frac, cfg);
        return side;
    }
    let coarse_side = bisect(&coarse, frac, cfg, rng);
    // Project and refine.
    let mut side: Vec<bool> = (0..wg.n()).map(|v| coarse_side[map[v] as usize]).collect();
    fm_refine(wg, &mut side, frac, cfg);
    side
}

/// Heavy-edge matching coarsening. Returns the coarse graph and the
/// fine→coarse vertex map.
fn coarsen(wg: &WGraph, rng: &mut Rng64) -> (WGraph, Vec<u32>) {
    let n = wg.n();
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    let mut mate = vec![u32::MAX; n];
    for &v in &order {
        let v = v as usize;
        if mate[v] != u32::MAX {
            continue;
        }
        // heaviest unmatched neighbor
        let mut best: Option<(u32, u64)> = None;
        for (u, w) in wg.neighbors(v) {
            if u as usize != v && mate[u as usize] == u32::MAX {
                if best.map_or(true, |(_, bw)| w > bw) {
                    best = Some((u, w));
                }
            }
        }
        match best {
            Some((u, _)) => {
                mate[v] = u;
                mate[u as usize] = v as u32;
            }
            None => mate[v] = v as u32, // stays single
        }
    }
    // Assign coarse ids (pair gets one id).
    let mut map = vec![u32::MAX; n];
    let mut nc = 0u32;
    for v in 0..n {
        if map[v] != u32::MAX {
            continue;
        }
        let m = mate[v] as usize;
        map[v] = nc;
        map[m] = nc; // m == v for singles
        nc += 1;
    }
    // Build coarse adjacency by aggregating fine edges.
    let nc = nc as usize;
    let mut agg: Vec<std::collections::HashMap<u32, u64>> =
        vec![std::collections::HashMap::new(); nc];
    let mut vwgt = vec![0u64; nc];
    for v in 0..n {
        let cv = map[v];
        vwgt[cv as usize] += wg.vwgt[v];
        for (u, w) in wg.neighbors(v) {
            let cu = map[u as usize];
            if cu != cv {
                *agg[cv as usize].entry(cu).or_insert(0) += w;
            }
        }
    }
    // Note: vwgt accumulation counts each vertex once; pairs sum both.
    // Edge weights were accumulated from both directions symmetrically.
    let mut xadj = Vec::with_capacity(nc + 1);
    xadj.push(0usize);
    let mut adj = Vec::new();
    let mut ewgt = Vec::new();
    for cv in 0..nc {
        let mut items: Vec<(u32, u64)> = agg[cv].iter().map(|(&u, &w)| (u, w)).collect();
        items.sort_unstable();
        for (u, w) in items {
            adj.push(u);
            ewgt.push(w);
        }
        xadj.push(adj.len());
    }
    (WGraph { xadj, adj, ewgt, vwgt }, map)
}

/// Greedy graph growing: BFS from a random seed accumulating weight until
/// the left side reaches its target; repeated `init_tries` times, keeping
/// the smallest cut.
fn initial_bisection(wg: &WGraph, frac: f64, cfg: &MultilevelConfig, rng: &mut Rng64) -> Vec<bool> {
    let n = wg.n();
    let total = wg.total_vwgt();
    let target_left = (total as f64 * frac).round() as u64;
    let mut best: Option<(u64, Vec<bool>)> = None;
    for _ in 0..cfg.init_tries.max(1) {
        let seed = rng.below(n.max(1));
        let mut side = vec![true; n]; // true = right
        let mut weight_left = 0u64;
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; n];
        queue.push_back(seed as u32);
        seen[seed] = true;
        let mut next_unseen = 0usize;
        while weight_left < target_left {
            let v = match queue.pop_front() {
                Some(v) => v,
                None => {
                    // disconnected: jump to the next unseen vertex
                    while next_unseen < n && seen[next_unseen] {
                        next_unseen += 1;
                    }
                    if next_unseen >= n {
                        break;
                    }
                    seen[next_unseen] = true;
                    next_unseen as u32
                }
            };
            // Stop before overshooting badly.
            if weight_left + wg.vwgt[v as usize] > target_left
                && weight_left >= (target_left as f64 * 0.9) as u64
            {
                break;
            }
            side[v as usize] = false;
            weight_left += wg.vwgt[v as usize];
            for (u, _) in wg.neighbors(v as usize) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        let cut = cut_weight(wg, &side);
        if best.as_ref().map_or(true, |(bc, _)| cut < *bc) {
            best = Some((cut, side));
        }
    }
    best.unwrap().1
}

fn cut_weight(wg: &WGraph, side: &[bool]) -> u64 {
    let mut cut = 0u64;
    for v in 0..wg.n() {
        for (u, w) in wg.neighbors(v) {
            if (u as usize) > v && side[u as usize] != side[v] {
                cut += w;
            }
        }
    }
    cut
}

/// Fiduccia–Mattheyses refinement with rollback: repeatedly move the
/// best-gain movable boundary vertex (balance permitting), lock it, and at
/// the end of the pass keep the best prefix of moves.
fn fm_refine(wg: &WGraph, side: &mut [bool], frac: f64, cfg: &MultilevelConfig) {
    let n = wg.n();
    let total = wg.total_vwgt() as f64;
    let target_left = total * frac;
    let max_left = (target_left * cfg.balance_tol) as u64;
    let min_left = (target_left * (2.0 - cfg.balance_tol)) as u64;

    for _pass in 0..cfg.fm_passes {
        let mut weight_left: u64 = (0..n).filter(|&v| !side[v]).map(|v| wg.vwgt[v]).sum();
        // gain[v] = cut reduction if v switches sides
        let gain = |v: usize, side: &[bool]| -> i64 {
            let mut g = 0i64;
            for (u, w) in wg.neighbors(v) {
                if side[u as usize] != side[v] {
                    g += w as i64;
                } else {
                    g -= w as i64;
                }
            }
            g
        };
        let mut locked = vec![false; n];
        // max-heap of (gain, v); lazily invalidated
        let mut heap: std::collections::BinaryHeap<(i64, u32)> = (0..n)
            .filter(|&v| is_boundary(wg, side, v))
            .map(|v| (gain(v, side), v as u32))
            .collect();
        let mut moves: Vec<u32> = Vec::new();
        let mut cum: i64 = 0;
        let mut best_cum: i64 = 0;
        let mut best_len: usize = 0;

        while let Some((g, v)) = heap.pop() {
            let v = v as usize;
            if locked[v] || g != gain(v, side) {
                if !locked[v] {
                    heap.push((gain(v, side), v as u32));
                }
                continue;
            }
            // balance check for moving v
            let new_left = if side[v] {
                weight_left + wg.vwgt[v]
            } else {
                weight_left.saturating_sub(wg.vwgt[v])
            };
            if new_left > max_left || new_left < min_left {
                locked[v] = true; // can't move this pass
                continue;
            }
            // apply move
            side[v] = !side[v];
            weight_left = new_left;
            locked[v] = true;
            moves.push(v as u32);
            cum += g;
            if cum > best_cum {
                best_cum = cum;
                best_len = moves.len();
            }
            for (u, _) in wg.neighbors(v) {
                let u = u as usize;
                if !locked[u] {
                    heap.push((gain(u, side), u as u32));
                }
            }
            // Bound pass length to avoid O(n log n) churn on huge graphs.
            if moves.len() > n.min(4096) {
                break;
            }
        }
        // rollback moves beyond the best prefix
        for &v in &moves[best_len..] {
            side[v as usize] = !side[v as usize];
        }
        if best_cum == 0 {
            break; // no improvement this pass
        }
    }
}

fn is_boundary(wg: &WGraph, side: &[bool], v: usize) -> bool {
    wg.neighbors(v).any(|(u, _)| side[u as usize] != side[v])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use fun3d_mesh::generator::MeshPreset;

    #[test]
    fn partitions_cover_all_parts() {
        let m = MeshPreset::Tiny.build();
        let g = m.vertex_graph();
        for k in [2usize, 3, 4, 7] {
            let part = partition_graph(&g, k, &MultilevelConfig::default());
            assert_eq!(part.len(), g.nvertices());
            let mut seen = vec![false; k];
            for &p in &part {
                assert!((p as usize) < k);
                seen[p as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "some part empty for k={k}");
        }
    }

    #[test]
    fn balanced_within_tolerance() {
        let m = MeshPreset::Small.build();
        let g = m.vertex_graph();
        for k in [2usize, 4, 8] {
            let part = partition_graph(&g, k, &MultilevelConfig::default());
            let q = PartitionQuality::of(&m.edges(), &part, k);
            assert!(
                q.imbalance < 1.15,
                "k={k} imbalance {}",
                q.imbalance
            );
        }
    }

    #[test]
    fn beats_natural_partition_on_cut() {
        let m = MeshPreset::Small.build(); // scrambled ordering
        let g = m.vertex_graph();
        let edges = m.edges();
        let k = 8;
        let ml = partition_graph(&g, k, &MultilevelConfig::default());
        let nat = crate::natural_partition(g.nvertices(), k);
        let cut_ml = crate::cut_edges(&edges, &ml);
        let cut_nat = crate::cut_edges(&edges, &nat);
        assert!(
            (cut_ml as f64) < 0.5 * cut_nat as f64,
            "multilevel cut {cut_ml} vs natural {cut_nat}"
        );
    }

    #[test]
    fn single_part_trivial() {
        let m = MeshPreset::Tiny.build();
        let g = m.vertex_graph();
        let part = partition_graph(&g, 1, &MultilevelConfig::default());
        assert!(part.iter().all(|&p| p == 0));
    }

    #[test]
    fn deterministic_with_seed() {
        let m = MeshPreset::Tiny.build();
        let g = m.vertex_graph();
        let cfg = MultilevelConfig::default();
        let a = partition_graph(&g, 4, &cfg);
        let b = partition_graph(&g, 4, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn cut_quality_reasonable_for_3d_mesh() {
        // For a good 2-way split of an N-vertex 3D mesh the cut should be
        // O(N^(2/3)); natural ordering of a scrambled mesh cuts O(E).
        let m = MeshPreset::Small.build();
        let g = m.vertex_graph();
        let edges = m.edges();
        let part = partition_graph(&g, 2, &MultilevelConfig::default());
        let q = PartitionQuality::of(&edges, &part, 2);
        assert!(
            q.cut_fraction < 0.12,
            "2-way cut fraction {} too large",
            q.cut_fraction
        );
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two disjoint triangles.
        let g = fun3d_mesh::Graph::from_edges(
            6,
            &[[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]],
        );
        let part = partition_graph(&g, 2, &MultilevelConfig::default());
        let q = PartitionQuality::of(
            &[[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]],
            &part,
            2,
        );
        assert_eq!(q.cut, 0, "disjoint triangles should split cleanly");
        assert!((q.imbalance - 1.0).abs() < 1e-9);
    }
}
