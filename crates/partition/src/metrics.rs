//! Partition quality metrics: edge cut and balance.

use crate::Partition;

/// Number of edges whose endpoints lie in different parts.
pub fn cut_edges(edges: &[[u32; 2]], part: &Partition) -> usize {
    edges
        .iter()
        .filter(|e| part[e[0] as usize] != part[e[1] as usize])
        .count()
}

/// Load imbalance of the vertex counts: `max_part_size / ideal` (1.0 is
/// perfect). Empty parts count as size 0.
pub fn imbalance(part: &Partition, nparts: usize) -> f64 {
    if part.is_empty() {
        return 1.0;
    }
    let mut sizes = vec![0usize; nparts];
    for &p in part.iter() {
        sizes[p as usize] += 1;
    }
    let ideal = part.len() as f64 / nparts as f64;
    *sizes.iter().max().unwrap() as f64 / ideal
}

/// Combined quality report for a partition.
#[derive(Clone, Copy, Debug)]
pub struct PartitionQuality {
    /// Parts requested.
    pub nparts: usize,
    /// Edges cut by the partition.
    pub cut: usize,
    /// Fraction of all edges cut.
    pub cut_fraction: f64,
    /// Vertex-count imbalance (1.0 = perfect).
    pub imbalance: f64,
}

impl PartitionQuality {
    /// Evaluates a partition against its edge list.
    pub fn of(edges: &[[u32; 2]], part: &Partition, nparts: usize) -> Self {
        let cut = cut_edges(edges, part);
        PartitionQuality {
            nparts,
            cut,
            cut_fraction: cut as f64 / edges.len().max(1) as f64,
            imbalance: imbalance(part, nparts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_counts_cross_edges() {
        let edges = [[0u32, 1], [1, 2], [2, 3]];
        let part = vec![0, 0, 1, 1];
        assert_eq!(cut_edges(&edges, &part), 1);
    }

    #[test]
    fn imbalance_perfect_and_skewed() {
        assert!((imbalance(&vec![0, 0, 1, 1], 2) - 1.0).abs() < 1e-12);
        assert!((imbalance(&vec![0, 0, 0, 1], 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quality_report() {
        let edges = [[0u32, 1], [1, 2], [2, 3], [3, 0]];
        let part = vec![0, 0, 1, 1];
        let q = PartitionQuality::of(&edges, &part, 2);
        assert_eq!(q.cut, 2);
        assert!((q.cut_fraction - 0.5).abs() < 1e-12);
        assert!((q.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_partition() {
        assert_eq!(imbalance(&vec![], 4), 1.0);
        assert_eq!(cut_edges(&[], &vec![]), 0);
    }
}
