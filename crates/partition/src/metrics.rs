//! Partition quality metrics: edge cut, balance, and tile quality.

use crate::tiling::EdgeTiling;
use crate::Partition;

/// Number of edges whose endpoints lie in different parts.
pub fn cut_edges(edges: &[[u32; 2]], part: &Partition) -> usize {
    edges
        .iter()
        .filter(|e| part[e[0] as usize] != part[e[1] as usize])
        .count()
}

/// Load imbalance of the vertex counts: `max_part_size / ideal` (1.0 is
/// perfect). Empty parts count as size 0.
pub fn imbalance(part: &Partition, nparts: usize) -> f64 {
    if part.is_empty() {
        return 1.0;
    }
    let mut sizes = vec![0usize; nparts];
    for &p in part.iter() {
        sizes[p as usize] += 1;
    }
    let ideal = part.len() as f64 / nparts as f64;
    *sizes.iter().max().unwrap() as f64 / ideal
}

/// Combined quality report for a partition.
#[derive(Clone, Copy, Debug)]
pub struct PartitionQuality {
    /// Parts requested.
    pub nparts: usize,
    /// Edges cut by the partition.
    pub cut: usize,
    /// Fraction of all edges cut.
    pub cut_fraction: f64,
    /// Vertex-count imbalance (1.0 = perfect).
    pub imbalance: f64,
}

impl PartitionQuality {
    /// Evaluates a partition against its edge list.
    pub fn of(edges: &[[u32; 2]], part: &Partition, nparts: usize) -> Self {
        let cut = cut_edges(edges, part);
        PartitionQuality {
            nparts,
            cut,
            cut_fraction: cut as f64 / edges.len().max(1) as f64,
            imbalance: imbalance(part, nparts),
        }
    }
}

/// Quality report for an [`EdgeTiling`]: how much locality the tiles
/// capture and how much parallelism the coloring leaves.
#[derive(Clone, Copy, Debug)]
pub struct TileQuality {
    /// Tiles in the tiling.
    pub ntiles: usize,
    /// Inter-tile colors (pool dispatches per kernel call).
    pub ncolors: usize,
    /// Edges covered.
    pub nedges: usize,
    /// Total scratch slots (sum of per-tile unique-vertex counts).
    pub vertex_slots: usize,
    /// Aggregate reuse: edges per staged vertex slot.
    pub reuse: f64,
    /// Worst tile's reuse (edges / unique vertices).
    pub min_tile_reuse: f64,
    /// Best tile's reuse.
    pub max_tile_reuse: f64,
    /// Halo fraction: share of scratch slots that are *re*-stages of a
    /// vertex already staged by another tile. 0 means each vertex lives
    /// in exactly one tile; the tiled kernels pay `(1 + halo)` of the
    /// minimal vertex traffic.
    pub halo_fraction: f64,
    /// Tiles in the largest color class (peak parallelism).
    pub max_color_tiles: usize,
    /// Tiles in the smallest color class (tail parallelism).
    pub min_color_tiles: usize,
}

impl TileQuality {
    /// Evaluates a tiling.
    pub fn of(tiling: &EdgeTiling) -> TileQuality {
        let slots = tiling.vertex_slots();
        let mut min_r = f64::INFINITY;
        let mut max_r: f64 = 0.0;
        let mut touched = vec![false; tiling.nvertices];
        let mut unique = 0usize;
        for tile in &tiling.tiles {
            let r = tile.reuse_factor();
            min_r = min_r.min(r);
            max_r = max_r.max(r);
            for &v in &tile.verts {
                if !touched[v as usize] {
                    touched[v as usize] = true;
                    unique += 1;
                }
            }
        }
        if tiling.tiles.is_empty() {
            min_r = 0.0;
        }
        TileQuality {
            ntiles: tiling.ntiles(),
            ncolors: tiling.ncolors(),
            nedges: tiling.nedges,
            vertex_slots: slots,
            reuse: tiling.reuse_factor(),
            min_tile_reuse: min_r,
            max_tile_reuse: max_r,
            halo_fraction: (slots - unique) as f64 / slots.max(1) as f64,
            max_color_tiles: tiling.color_tiles.iter().map(Vec::len).max().unwrap_or(0),
            min_color_tiles: tiling.color_tiles.iter().map(Vec::len).min().unwrap_or(0),
        }
    }

    /// One-line human summary for the bench binaries.
    pub fn summary(&self) -> String {
        format!(
            "{} tiles, {} colors ({}..{} tiles/color), reuse {:.2} edges/slot \
             ({:.2}..{:.2} per tile), halo {:.1}%",
            self.ntiles,
            self.ncolors,
            self.min_color_tiles,
            self.max_color_tiles,
            self.reuse,
            self.min_tile_reuse,
            self.max_tile_reuse,
            self.halo_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::TilingConfig;
    use fun3d_mesh::generator::MeshPreset;

    #[test]
    fn tile_quality_sane_on_mesh() {
        let m = MeshPreset::Tiny.build();
        let edges = m.edges();
        let tl = EdgeTiling::build(m.nvertices(), &edges, &TilingConfig::with_target_bytes(8192));
        let q = TileQuality::of(&tl);
        assert_eq!(q.nedges, edges.len());
        assert!(q.ntiles >= 1 && q.ncolors >= 1);
        assert!(q.min_color_tiles >= 1, "empty color class");
        assert!(q.max_color_tiles >= q.min_color_tiles);
        // Reuse: a 3-D mesh tile amortizes each staged vertex over >1
        // edge in aggregate, and no tile can exceed the complete-graph
        // bound v*(v-1)/2 / v.
        assert!(q.reuse > 1.0, "aggregate reuse {}", q.reuse);
        assert!(q.min_tile_reuse > 0.0);
        assert!(q.max_tile_reuse < tl.max_tile_vertices as f64 / 2.0 + 1.0);
        assert!(q.min_tile_reuse <= q.reuse && q.reuse <= q.max_tile_reuse);
        // Halo is a proper fraction and positive (tiles must overlap on
        // a connected mesh with more than one tile).
        assert!(q.halo_fraction >= 0.0 && q.halo_fraction < 1.0);
        if q.ntiles > 1 {
            assert!(q.halo_fraction > 0.0);
        }
        // slots = unique * (1 + halo) by construction.
        let unique = (q.vertex_slots as f64 * (1.0 - q.halo_fraction)).round();
        assert!(unique <= m.nvertices() as f64 + 0.5);
        assert!(!q.summary().is_empty());
    }

    #[test]
    fn tile_quality_empty_tiling() {
        let tl = EdgeTiling::build(3, &[], &TilingConfig::with_target_bytes(4096));
        let q = TileQuality::of(&tl);
        assert_eq!(q.ntiles, 0);
        assert_eq!(q.vertex_slots, 0);
        assert_eq!(q.halo_fraction, 0.0);
    }

    #[test]
    fn cut_counts_cross_edges() {
        let edges = [[0u32, 1], [1, 2], [2, 3]];
        let part = vec![0, 0, 1, 1];
        assert_eq!(cut_edges(&edges, &part), 1);
    }

    #[test]
    fn imbalance_perfect_and_skewed() {
        assert!((imbalance(&vec![0, 0, 1, 1], 2) - 1.0).abs() < 1e-12);
        assert!((imbalance(&vec![0, 0, 0, 1], 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quality_report() {
        let edges = [[0u32, 1], [1, 2], [2, 3], [3, 0]];
        let part = vec![0, 0, 1, 1];
        let q = PartitionQuality::of(&edges, &part, 2);
        assert_eq!(q.cut, 2);
        assert!((q.cut_fraction - 0.5).abs() < 1e-12);
        assert!((q.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_partition() {
        assert_eq!(imbalance(&vec![], 4), 1.0);
        assert_eq!(cut_edges(&[], &vec![]), 0);
    }
}
