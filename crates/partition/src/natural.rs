//! Natural-order (contiguous-range) partitioning.

use crate::Partition;

/// Splits `0..n` vertices into `nparts` contiguous, near-equal ranges —
/// the paper's "basic partitioning" (splitting "based on natural order").
pub fn natural_partition(n: usize, nparts: usize) -> Partition {
    assert!(nparts > 0);
    let mut part = vec![0u32; n];
    for p in 0..nparts {
        let r = fun3d_threads::chunk_range(n, nparts, p);
        for v in r {
            part[v] = p as u32;
        }
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_vertices_balanced() {
        let part = natural_partition(10, 3);
        assert_eq!(part.len(), 10);
        let mut counts = [0usize; 3];
        for &p in &part {
            counts[p as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| c == 3 || c == 4));
    }

    #[test]
    fn contiguous_ranges() {
        let part = natural_partition(100, 7);
        for w in part.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1, "parts must be contiguous");
        }
    }

    #[test]
    fn single_part() {
        let part = natural_partition(5, 1);
        assert!(part.iter().all(|&p| p == 0));
    }

    #[test]
    fn more_parts_than_vertices() {
        let part = natural_partition(2, 4);
        assert_eq!(part, vec![0, 1]);
    }
}
