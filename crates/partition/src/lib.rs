//! Graph partitioning and edge-loop work distribution.
//!
//! The paper distributes the edge-based loops over threads by
//! **domain decomposition inside the node** (Section V.A): vertices are
//! divided among threads, and three strategies are compared —
//!
//! 1. *Basic partitioning with atomics*: edges split in natural order,
//!    conflicting vertex updates resolved with atomic adds;
//! 2. *Basic partitioning with replication*: vertices split in natural
//!    (contiguous) order; every thread processes all edges incident to its
//!    vertices and writes only the endpoints it owns ("owner-only
//!    writes"), so cut edges are computed twice (41% redundant work at 20
//!    threads in the paper);
//! 3. *METIS-based partitioning*: same owner-only writes but with a
//!    quality multilevel partition, which balances the work and shrinks
//!    the replication to ~4%.
//!
//! METIS itself is not available, so [`multilevel`] implements the same
//! algorithm family from scratch: heavy-edge-matching coarsening, greedy
//! graph growing at the coarsest level, Fiduccia–Mattheyses boundary
//! refinement, recursive bisection to k parts. [`replication`] turns a
//! vertex partition into per-thread edge work lists with replication
//! accounting, and [`coloring`] provides the edge-coloring alternative the
//! paper rejects (kept for the ablation study).
//!
//! [`tiling`] adds the fourth write-conflict strategy beyond the paper:
//! cache-blocked edge tiles with scratch-pad staging. Edges are grouped
//! into tiles whose touched-vertex working set fits in a core's private
//! L2; a tile's vertex data is gathered once into a dense scratch pad,
//! all its edges accumulate there with full reuse, and conflicts are
//! resolved by coloring *across* tiles (not across edges), preserving the
//! intra-tile locality that per-edge coloring destroys.

pub mod coloring;
pub mod metrics;
pub mod multilevel;
pub mod natural;
pub mod replication;
pub mod tiling;

pub use metrics::{cut_edges, imbalance, PartitionQuality, TileQuality};
pub use multilevel::{partition_graph, MultilevelConfig};
pub use natural::natural_partition;
pub use replication::OwnerWritesPlan;
pub use tiling::{EdgeTiling, Tile, TilingConfig};

/// A vertex partition: `part[v]` is the part (thread) owning vertex `v`.
pub type Partition = Vec<u32>;
