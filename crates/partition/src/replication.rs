//! Owner-only-writes edge work plans with replication accounting.
//!
//! Given a vertex→thread assignment, a thread processes every edge that
//! touches at least one vertex it owns, but *writes* only its own
//! endpoints ("owner-only writes"). Edges whose endpoints belong to two
//! different threads are therefore processed twice — the **replication
//! overhead** the paper quantifies: 41% with natural-order splitting at 20
//! threads, 4% with METIS, ~15% at 240 threads on many-core.

use crate::Partition;

/// Per-thread edge work lists for the owner-only-writes strategy.
#[derive(Clone, Debug)]
pub struct OwnerWritesPlan {
    /// For each thread, the edge ids it processes (ascending).
    pub edges_of: Vec<Vec<u32>>,
    /// For each thread, aligned with `edges_of`: bit 0 set = this thread
    /// writes endpoint 0 of the edge, bit 1 = endpoint 1.
    pub writes_of: Vec<Vec<u8>>,
    /// Total number of (edge, thread) processings.
    pub processed: usize,
    /// Number of unique edges.
    pub nedges: usize,
}

impl OwnerWritesPlan {
    /// Builds the plan for an edge list and a vertex partition over
    /// `nthreads` threads.
    pub fn build(edges: &[[u32; 2]], part: &Partition, nthreads: usize) -> Self {
        let mut edges_of: Vec<Vec<u32>> = vec![Vec::new(); nthreads];
        let mut writes_of: Vec<Vec<u8>> = vec![Vec::new(); nthreads];
        let mut processed = 0usize;
        for (eid, e) in edges.iter().enumerate() {
            let p0 = part[e[0] as usize] as usize;
            let p1 = part[e[1] as usize] as usize;
            if p0 == p1 {
                edges_of[p0].push(eid as u32);
                writes_of[p0].push(0b11);
                processed += 1;
            } else {
                edges_of[p0].push(eid as u32);
                writes_of[p0].push(0b01);
                edges_of[p1].push(eid as u32);
                writes_of[p1].push(0b10);
                processed += 2;
            }
        }
        OwnerWritesPlan {
            edges_of,
            writes_of,
            processed,
            nedges: edges.len(),
        }
    }

    /// Number of threads in the plan.
    pub fn nthreads(&self) -> usize {
        self.edges_of.len()
    }

    /// Redundant-compute fraction: `processed / nedges - 1`
    /// (0.41 = the paper's "41% increase in compute").
    pub fn replication_overhead(&self) -> f64 {
        if self.nedges == 0 {
            0.0
        } else {
            self.processed as f64 / self.nedges as f64 - 1.0
        }
    }

    /// Edge-work imbalance: `max_thread_edges / ideal` where ideal =
    /// processed / nthreads.
    pub fn work_imbalance(&self) -> f64 {
        if self.processed == 0 {
            return 1.0;
        }
        let max = self.edges_of.iter().map(Vec::len).max().unwrap_or(0);
        max as f64 * self.nthreads() as f64 / self.processed as f64
    }

    /// Edge count processed by the busiest thread (the parallel critical
    /// path of the edge loop under this plan).
    pub fn max_thread_edges(&self) -> usize {
        self.edges_of.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{natural_partition, partition_graph, MultilevelConfig};
    use fun3d_mesh::generator::MeshPreset;

    #[test]
    fn interior_edges_processed_once() {
        // 4 vertices on thread 0 and 1; edge [0,1] interior to t0,
        // [2,3] interior to t1, [1,2] cut.
        let edges = [[0u32, 1], [2, 3], [1, 2]];
        let part = vec![0, 0, 1, 1];
        let plan = OwnerWritesPlan::build(&edges, &part, 2);
        assert_eq!(plan.processed, 4);
        assert_eq!(plan.edges_of[0], vec![0, 2]);
        assert_eq!(plan.edges_of[1], vec![1, 2]);
        assert!((plan.replication_overhead() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn write_masks_cover_each_endpoint_exactly_once() {
        let m = MeshPreset::Tiny.build();
        let edges = m.edges();
        let g = m.vertex_graph();
        let part = partition_graph(&g, 4, &MultilevelConfig::default());
        let plan = OwnerWritesPlan::build(&edges, &part, 4);
        // Each endpoint of each edge must be written by exactly one thread.
        let mut writes = vec![[0u8; 2]; edges.len()];
        for t in 0..plan.nthreads() {
            for (k, &eid) in plan.edges_of[t].iter().enumerate() {
                let mask = plan.writes_of[t][k];
                if mask & 1 != 0 {
                    writes[eid as usize][0] += 1;
                }
                if mask & 2 != 0 {
                    writes[eid as usize][1] += 1;
                }
            }
        }
        assert!(writes.iter().all(|w| w[0] == 1 && w[1] == 1));
    }

    #[test]
    fn writer_owns_the_vertex() {
        let m = MeshPreset::Tiny.build();
        let edges = m.edges();
        let part = natural_partition(m.nvertices(), 3);
        let plan = OwnerWritesPlan::build(&edges, &part, 3);
        for t in 0..3 {
            for (k, &eid) in plan.edges_of[t].iter().enumerate() {
                let mask = plan.writes_of[t][k];
                let e = edges[eid as usize];
                if mask & 1 != 0 {
                    assert_eq!(part[e[0] as usize] as usize, t);
                }
                if mask & 2 != 0 {
                    assert_eq!(part[e[1] as usize] as usize, t);
                }
            }
        }
    }

    #[test]
    fn metis_style_replication_much_lower_than_natural() {
        let m = MeshPreset::Small.build();
        let edges = m.edges();
        let g = m.vertex_graph();
        let nt = 8;
        let nat = OwnerWritesPlan::build(&edges, &natural_partition(m.nvertices(), nt), nt);
        let ml = OwnerWritesPlan::build(
            &edges,
            &partition_graph(&g, nt, &MultilevelConfig::default()),
            nt,
        );
        assert!(
            ml.replication_overhead() < 0.5 * nat.replication_overhead(),
            "multilevel {} vs natural {}",
            ml.replication_overhead(),
            nat.replication_overhead()
        );
    }

    #[test]
    fn single_thread_no_replication() {
        let m = MeshPreset::Tiny.build();
        let edges = m.edges();
        let plan = OwnerWritesPlan::build(&edges, &vec![0; m.nvertices()], 1);
        assert_eq!(plan.replication_overhead(), 0.0);
        assert_eq!(plan.max_thread_edges(), edges.len());
        assert!((plan.work_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_edges() {
        let plan = OwnerWritesPlan::build(&[], &vec![0, 1], 2);
        assert_eq!(plan.replication_overhead(), 0.0);
        assert_eq!(plan.work_imbalance(), 1.0);
    }
}
