//! The 4-lane f64 SIMD value type.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// Four `f64` lanes with 32-byte alignment (one AVX register).
///
/// All arithmetic is lane-wise. The loops in each operator are trivially
/// vectorizable; with `-C target-feature=+avx` (or `target-cpu=native` on
/// an AVX machine) LLVM emits single packed instructions.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
#[repr(C, align(32))]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All lanes zero.
    #[inline]
    pub fn zero() -> Self {
        F64x4([0.0; 4])
    }

    /// All lanes equal to `x`.
    #[inline]
    pub fn splat(x: f64) -> Self {
        F64x4([x; 4])
    }

    /// Loads four consecutive doubles from a slice.
    #[inline]
    pub fn from_slice(xs: &[f64]) -> Self {
        F64x4([xs[0], xs[1], xs[2], xs[3]])
    }

    /// Stores the four lanes into the first four elements of `out`.
    #[inline]
    pub fn write_to(self, out: &mut [f64]) {
        out[..4].copy_from_slice(&self.0);
    }

    /// Lane-wise fused-style multiply-add `self * a + b`.
    ///
    /// Written as `mul_add`-free `a*b+c` so it vectorizes without requiring
    /// FMA hardware; the paper's Ivy Bridge machine has no FMA either (it
    /// issues mul and add to two separate pipes).
    #[inline]
    pub fn mul_add(self, a: F64x4, b: F64x4) -> F64x4 {
        let mut out = [0.0; 4];
        for i in 0..4 {
            out[i] = self.0[i] * a.0[i] + b.0[i];
        }
        F64x4(out)
    }

    /// Lane-wise square root.
    #[inline]
    pub fn sqrt(self) -> F64x4 {
        let mut out = [0.0; 4];
        for i in 0..4 {
            out[i] = self.0[i].sqrt();
        }
        F64x4(out)
    }

    /// Lane-wise absolute value.
    #[inline]
    pub fn abs(self) -> F64x4 {
        let mut out = [0.0; 4];
        for i in 0..4 {
            out[i] = self.0[i].abs();
        }
        F64x4(out)
    }

    /// Lane-wise maximum.
    #[inline]
    pub fn max(self, o: F64x4) -> F64x4 {
        let mut out = [0.0; 4];
        for i in 0..4 {
            out[i] = self.0[i].max(o.0[i]);
        }
        F64x4(out)
    }

    /// Lane-wise minimum.
    #[inline]
    pub fn min(self, o: F64x4) -> F64x4 {
        let mut out = [0.0; 4];
        for i in 0..4 {
            out[i] = self.0[i].min(o.0[i]);
        }
        F64x4(out)
    }

    /// Horizontal sum of the four lanes.
    #[inline]
    pub fn hsum(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }

    /// The lanes as an array.
    #[inline]
    pub fn to_array(self) -> [f64; 4] {
        self.0
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F64x4 {
            type Output = F64x4;
            #[inline]
            fn $method(self, rhs: F64x4) -> F64x4 {
                let mut out = [0.0; 4];
                for i in 0..4 {
                    out[i] = self.0[i] $op rhs.0[i];
                }
                F64x4(out)
            }
        }
        impl $trait<f64> for F64x4 {
            type Output = F64x4;
            #[inline]
            fn $method(self, rhs: f64) -> F64x4 {
                let mut out = [0.0; 4];
                for i in 0..4 {
                    out[i] = self.0[i] $op rhs;
                }
                F64x4(out)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl AddAssign for F64x4 {
    #[inline]
    fn add_assign(&mut self, rhs: F64x4) {
        *self = *self + rhs;
    }
}

impl SubAssign for F64x4 {
    #[inline]
    fn sub_assign(&mut self, rhs: F64x4) {
        *self = *self - rhs;
    }
}

impl MulAssign for F64x4 {
    #[inline]
    fn mul_assign(&mut self, rhs: F64x4) {
        *self = *self * rhs;
    }
}

impl Neg for F64x4 {
    type Output = F64x4;
    #[inline]
    fn neg(self) -> F64x4 {
        F64x4([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

impl Index<usize> for F64x4 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for F64x4 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_lanewise() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4([10.0, 20.0, 30.0, 40.0]);
        assert_eq!((a + b).0, [11.0, 22.0, 33.0, 44.0]);
        assert_eq!((b - a).0, [9.0, 18.0, 27.0, 36.0]);
        assert_eq!((a * b).0, [10.0, 40.0, 90.0, 160.0]);
        assert_eq!((b / a).0, [10.0, 10.0, 10.0, 10.0]);
        assert_eq!((a * 2.0).0, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((-a).0, [-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn mul_add_matches_scalar() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::splat(0.5);
        let c = F64x4::splat(1.0);
        let r = a.mul_add(b, c);
        for i in 0..4 {
            assert_eq!(r[i], a[i] * 0.5 + 1.0);
        }
    }

    #[test]
    fn sqrt_abs_minmax() {
        let a = F64x4([4.0, 9.0, 16.0, 25.0]);
        assert_eq!(a.sqrt().0, [2.0, 3.0, 4.0, 5.0]);
        let b = F64x4([-1.0, 2.0, -3.0, 4.0]);
        assert_eq!(b.abs().0, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.max(F64x4::zero()).0, [0.0, 2.0, 0.0, 4.0]);
        assert_eq!(b.min(F64x4::zero()).0, [-1.0, 0.0, -3.0, 0.0]);
    }

    #[test]
    fn hsum_and_roundtrip() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.hsum(), 10.0);
        let mut buf = [0.0; 4];
        a.write_to(&mut buf);
        assert_eq!(F64x4::from_slice(&buf), a);
    }

    #[test]
    fn alignment_is_32() {
        assert_eq!(std::mem::align_of::<F64x4>(), 32);
        assert_eq!(std::mem::size_of::<F64x4>(), 32);
    }

    #[test]
    fn assign_ops() {
        let mut a = F64x4::splat(1.0);
        a += F64x4::splat(2.0);
        a -= F64x4::splat(0.5);
        a *= F64x4::splat(2.0);
        assert_eq!(a.0, [5.0; 4]);
    }
}
