//! Software prefetch hints.
//!
//! On an unstructured mesh the vertices touched by successive edges follow
//! no regular order, so hardware prefetchers miss them — but the edge list
//! *is* known ahead of time, so the paper issues explicit prefetches for
//! the node and edge data of edges a fixed distance ahead, into both L1
//! and L2 (Section V.A, "Software Prefetching"; 28% execution-time
//! reduction on the flux kernel). These wrappers compile to
//! `prefetcht0`/`prefetcht1` on x86-64 and to nothing elsewhere, so
//! kernels can call them unconditionally.

/// Prefetches the cache line containing `&data[i]` into L1 (T0 hint).
/// Out-of-range indices are ignored, which lets kernels prefetch
/// `i + DIST` without guarding the loop tail.
#[inline(always)]
pub fn prefetch_l1<T>(data: &[T], i: usize) {
    if i < data.len() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the pointer is within the slice; prefetch has no memory
        // effects visible to the program.
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                data.as_ptr().add(i).cast::<i8>(),
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = &data[i];
        }
    }
}

/// Prefetches the cache line containing `&data[i]` into L2 (T1 hint).
#[inline(always)]
pub fn prefetch_l2<T>(data: &[T], i: usize) {
    if i < data.len() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see prefetch_l1.
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T1 }>(
                data.as_ptr().add(i).cast::<i8>(),
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = &data[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_in_range_is_noop_semantically() {
        let data = vec![1.0f64; 128];
        prefetch_l1(&data, 0);
        prefetch_l1(&data, 127);
        prefetch_l2(&data, 64);
        // No observable effect; the test asserts we did not fault.
        assert_eq!(data[127], 1.0);
    }

    #[test]
    fn prefetch_out_of_range_is_ignored() {
        let data = vec![0u8; 4];
        prefetch_l1(&data, 4);
        prefetch_l1(&data, usize::MAX);
        prefetch_l2(&data, 1_000_000);
    }

    #[test]
    fn prefetch_empty_slice() {
        let data: Vec<f64> = Vec::new();
        prefetch_l1(&data, 0);
        prefetch_l2(&data, 0);
    }
}
