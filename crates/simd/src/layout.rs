//! AoS / SoA gather and scatter helpers for vertex data.
//!
//! The paper's data-structure study (Section V.A, "Data structures"): edge
//! data is streamed and therefore kept as Structure-of-Arrays, while *node*
//! data — whose 4 state variables per vertex are consumed together — is
//! kept as (multiple) Array-of-Structures so one vector load grabs a whole
//! vertex and the lane transpose happens in registers. These helpers are
//! the building blocks both layouts use in the SIMD flux kernels.

use crate::vec4::F64x4;

/// Gathers one field (`field < stride`) for four vertices stored AoS
/// (`data[v * stride + field]`), producing one SIMD lane per vertex.
#[inline]
pub fn aos_gather4(data: &[f64], stride: usize, field: usize, idx: [usize; 4]) -> F64x4 {
    F64x4([
        data[idx[0] * stride + field],
        data[idx[1] * stride + field],
        data[idx[2] * stride + field],
        data[idx[3] * stride + field],
    ])
}

/// Loads all `N` fields of four AoS vertices and transposes them so that
/// output `[f]` holds field `f` of the four vertices. This models the
/// "vector load + register permutation" access the paper prefers: 4 vector
/// loads (one per vertex) instead of `N` gathers.
#[inline]
pub fn aos_load_transpose<const N: usize>(
    data: &[f64],
    stride: usize,
    idx: [usize; 4],
) -> [F64x4; N] {
    debug_assert!(N <= stride);
    let mut out = [F64x4::zero(); N];
    for lane in 0..4 {
        let base = idx[lane] * stride;
        let v = &data[base..base + N];
        for (f, o) in out.iter_mut().enumerate() {
            o.0[lane] = v[f];
        }
    }
    out
}

/// Gathers one SoA field array at four indices.
#[inline]
pub fn soa_gather4(field: &[f64], idx: [usize; 4]) -> F64x4 {
    F64x4([field[idx[0]], field[idx[1]], field[idx[2]], field[idx[3]]])
}

/// Scatter-adds four lane values into an AoS field at four indices.
///
/// This is the scalar "write-out" phase of the paper's SIMD restructuring:
/// the compute runs vectorized into temporaries and results are committed
/// with scalar stores, eliminating intra-batch dependences. Indices may
/// repeat; later lanes accumulate on earlier ones, matching sequential
/// edge-order semantics.
#[inline]
pub fn aos_scatter_add4(data: &mut [f64], stride: usize, field: usize, idx: [usize; 4], v: F64x4) {
    for lane in 0..4 {
        data[idx[lane] * stride + field] += v.0[lane];
    }
}

/// Converts an SoA set of `nf` field slices (each `n` long) into a single
/// AoS buffer of stride `nf`.
pub fn soa_to_aos(fields: &[&[f64]]) -> Vec<f64> {
    let nf = fields.len();
    if nf == 0 {
        return Vec::new();
    }
    let n = fields[0].len();
    assert!(fields.iter().all(|f| f.len() == n), "ragged SoA fields");
    let mut out = vec![0.0; n * nf];
    for (fi, field) in fields.iter().enumerate() {
        for (vi, &x) in field.iter().enumerate() {
            out[vi * nf + fi] = x;
        }
    }
    out
}

/// Converts an AoS buffer with the given stride into per-field SoA vectors.
pub fn aos_to_soa(data: &[f64], stride: usize) -> Vec<Vec<f64>> {
    assert!(stride > 0 && data.len() % stride == 0);
    let n = data.len() / stride;
    let mut out = vec![vec![0.0; n]; stride];
    for vi in 0..n {
        for fi in 0..stride {
            out[fi][vi] = data[vi * stride + fi];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aos_fixture() -> Vec<f64> {
        // 5 vertices, 3 fields: data[v*3+f] = 100*v + f
        let mut d = vec![0.0; 15];
        for v in 0..5 {
            for f in 0..3 {
                d[v * 3 + f] = (100 * v + f) as f64;
            }
        }
        d
    }

    #[test]
    fn gather_aos_field() {
        let d = aos_fixture();
        let g = aos_gather4(&d, 3, 2, [0, 2, 4, 1]);
        assert_eq!(g.0, [2.0, 202.0, 402.0, 102.0]);
    }

    #[test]
    fn load_transpose_matches_gather() {
        let d = aos_fixture();
        let idx = [3, 1, 4, 0];
        let t: [F64x4; 3] = aos_load_transpose(&d, 3, idx);
        for f in 0..3 {
            assert_eq!(t[f], aos_gather4(&d, 3, f, idx));
        }
    }

    #[test]
    fn gather_soa() {
        let f: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let g = soa_gather4(&f, [9, 0, 5, 5]);
        assert_eq!(g.0, [9.0, 0.0, 5.0, 5.0]);
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let mut d = vec![0.0; 12]; // 4 vertices, stride 3
        aos_scatter_add4(&mut d, 3, 1, [0, 2, 0, 3], F64x4([1.0, 2.0, 3.0, 4.0]));
        assert_eq!(d[0 * 3 + 1], 4.0); // lanes 0 and 2 both hit vertex 0
        assert_eq!(d[2 * 3 + 1], 2.0);
        assert_eq!(d[3 * 3 + 1], 4.0);
    }

    #[test]
    fn soa_aos_roundtrip() {
        let a: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let soa = aos_to_soa(&a, 4);
        let refs: Vec<&[f64]> = soa.iter().map(|v| v.as_slice()).collect();
        let back = soa_to_aos(&refs);
        assert_eq!(back, a);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_soa_panics() {
        let a = [1.0, 2.0];
        let b = [1.0];
        soa_to_aos(&[&a, &b]);
    }
}
