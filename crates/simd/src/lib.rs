//! Portable 4-wide double-precision SIMD primitives.
//!
//! The paper's single-node machine (Xeon E5-2690v2) has 4-wide DP AVX
//! units, and its flux-kernel vectorization processes **four edges per
//! thread concurrently**, one edge per SIMD lane, with computation written
//! so the auto-vectorizer emits packed code (the paper found auto
//! vectorization matched or beat hand intrinsics). We mirror that design:
//! [`F64x4`] is a `#[repr(align(32))]` 4-lane value type whose lane-wise
//! operators compile to packed AVX when the target supports it, and to
//! decent scalar code elsewhere. Kernels written against `F64x4` are the
//! "SIMD" variants of the paper; the same kernels written against `f64`
//! are the scalar baselines.

pub mod layout;
pub mod prefetch;
pub mod vec4;

pub use layout::{aos_gather4, aos_load_transpose, aos_scatter_add4, soa_gather4};
pub use prefetch::{prefetch_l1, prefetch_l2};
pub use vec4::F64x4;

/// Number of lanes in the SIMD value type, matching 256-bit AVX doubles.
pub const LANES: usize = 4;
