//! Block-sparse linear algebra: the PETSc substrate.
//!
//! PETSc-FUN3D stores its Jacobian in **block CSR** with 4×4 blocks (one
//! block per vertex pair, 4 unknowns per vertex), which the 1999 papers
//! [2,3] showed is crucial: coalesced loads (a 4×4 f64 block spans exactly
//! two cache lines), amortized index arithmetic, lower bandwidth pressure.
//! On top of the storage this crate implements the paper's "sparse,
//! narrow-band recurrence" kernels and both of their parallelization
//! strategies:
//!
//! * [`ilu`] — ILU(0) and ILU(k) factorization with the fill pattern
//!   computed symbolically, diagonal blocks inverted and stored (PETSc's
//!   layout optimization [17]), and the paper's compressed-temporary-
//!   buffer optimization;
//! * [`trsv`] — block forward/backward substitution;
//! * [`levels`] — level scheduling (Anderson & Saad [24], Naumov [25]):
//!   execute the dependency DAG level by level with a barrier per level;
//! * [`p2p`] — sparsified point-to-point synchronization (Park et al.
//!   [26]): approximate transitive reduction of cross-thread dependency
//!   edges, then spin on per-row done-flags instead of barriers;
//! * [`dag`] — the paper's *available parallelism* metric: total flops
//!   divided by flops along the critical path (Table II: 248× for ILU-0
//!   vs 60× for ILU-1 on Mesh-C).

pub mod bcsr;
pub mod block;
pub mod csr;
pub mod dag;
pub mod ilu;
pub mod levels;
pub mod p2p;
pub mod trsv;

pub use bcsr::Bcsr4;
pub use block::{Block4, BLOCK_DIM, BLOCK_LEN};
pub use dag::DagStats;
pub use ilu::{IluFactors, TempBuffer};
pub use levels::LevelSchedule;
pub use p2p::{P2pProgress, P2pSchedule};

/// Dense helpers shared by tests in this crate and by the solver crate's
/// reference checks.
pub mod dense {
    /// Solves the dense system `a x = b` (n×n row-major) by Gaussian
    /// elimination with partial pivoting. Panics on singular input.
    pub fn solve(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
        assert_eq!(a.len(), n * n);
        assert_eq!(b.len(), n);
        let mut m = a.to_vec();
        let mut x = b.to_vec();
        for col in 0..n {
            // pivot
            let mut piv = col;
            for r in col + 1..n {
                if m[r * n + col].abs() > m[piv * n + col].abs() {
                    piv = r;
                }
            }
            assert!(m[piv * n + col].abs() > 1e-300, "singular matrix");
            if piv != col {
                for c in 0..n {
                    m.swap(col * n + c, piv * n + c);
                }
                x.swap(col, piv);
            }
            let d = m[col * n + col];
            for r in col + 1..n {
                let f = m[r * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    m[r * n + c] -= f * m[col * n + c];
                }
                x[r] -= f * x[col];
            }
        }
        for col in (0..n).rev() {
            x[col] /= m[col * n + col];
            for r in 0..col {
                x[r] -= m[r * n + col] * x[col];
            }
        }
        x
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn solves_identity() {
            let a = vec![1.0, 0.0, 0.0, 1.0];
            let b = vec![3.0, 4.0];
            assert_eq!(solve(&a, &b, 2), b);
        }

        #[test]
        fn solves_2x2() {
            let a = vec![2.0, 1.0, 1.0, 3.0];
            let x = solve(&a, &[5.0, 10.0], 2);
            assert!((x[0] - 1.0).abs() < 1e-12);
            assert!((x[1] - 3.0).abs() < 1e-12);
        }

        #[test]
        fn pivoting_handles_zero_diagonal() {
            let a = vec![0.0, 1.0, 1.0, 0.0];
            let x = solve(&a, &[2.0, 3.0], 2);
            assert!((x[0] - 3.0).abs() < 1e-12);
            assert!((x[1] - 2.0).abs() < 1e-12);
        }
    }
}
