//! Dense 4×4 block primitives.
//!
//! The recurrences' inner kernels are 4×4 matrix · 4-vector products
//! (TRSV) and 4×4 matrix·matrix multiply-subtracts plus one 4×4 inversion
//! per row (ILU). Blocks are stored row-major. Each op has a scalar and a
//! SIMD ([`fun3d_simd::F64x4`]) variant; the SIMD variants vectorize
//! *within* the block, as the paper does ("vectorization is done within a
//! block").

use fun3d_simd::F64x4;

/// Block dimension: 4 unknowns per vertex (p, u, v, w).
pub const BLOCK_DIM: usize = 4;
/// Doubles per block.
pub const BLOCK_LEN: usize = BLOCK_DIM * BLOCK_DIM;

/// A row-major 4×4 block.
pub type Block4 = [f64; BLOCK_LEN];

/// The zero block.
pub const ZERO_BLOCK: Block4 = [0.0; BLOCK_LEN];

/// The identity block.
pub fn identity() -> Block4 {
    let mut b = ZERO_BLOCK;
    for i in 0..BLOCK_DIM {
        b[i * BLOCK_DIM + i] = 1.0;
    }
    b
}

/// `y += a * x` (block·vector, scalar code).
#[inline]
pub fn matvec_acc(a: &Block4, x: &[f64; 4], y: &mut [f64; 4]) {
    for r in 0..4 {
        let row = &a[r * 4..r * 4 + 4];
        y[r] += row[0] * x[0] + row[1] * x[1] + row[2] * x[2] + row[3] * x[3];
    }
}

/// `y -= a * x` (block·vector, scalar code).
#[inline]
pub fn matvec_sub(a: &Block4, x: &[f64; 4], y: &mut [f64; 4]) {
    for r in 0..4 {
        let row = &a[r * 4..r * 4 + 4];
        y[r] -= row[0] * x[0] + row[1] * x[1] + row[2] * x[2] + row[3] * x[3];
    }
}

/// `y -= a * x` vectorized: broadcast each x-lane and accumulate whole
/// columns, keeping the block's rows in SIMD registers.
#[inline]
pub fn matvec_sub_simd(a: &Block4, x: &[f64; 4], y: &mut [f64; 4]) {
    // Treat y as one SIMD register of the 4 row results: y_r = Σ_c a[r][c]x[c].
    // Column c of a (strided) times x[c]: gather columns once.
    let col = |c: usize| F64x4([a[c], a[4 + c], a[8 + c], a[12 + c]]);
    let mut acc = F64x4::from_slice(y);
    acc = acc - (col(0) * x[0] + col(1) * x[1] + col(2) * x[2] + col(3) * x[3]);
    acc.write_to(y);
}

/// `c -= a * b` (block·block multiply-subtract, scalar).
#[inline]
pub fn matmul_sub(a: &Block4, b: &Block4, c: &mut Block4) {
    for i in 0..4 {
        for k in 0..4 {
            let aik = a[i * 4 + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..4 {
                c[i * 4 + j] -= aik * b[k * 4 + j];
            }
        }
    }
}

/// `c -= a * b` vectorized over the rows of `b`.
#[inline]
pub fn matmul_sub_simd(a: &Block4, b: &Block4, c: &mut Block4) {
    for i in 0..4 {
        let mut acc = F64x4::from_slice(&c[i * 4..i * 4 + 4]);
        for k in 0..4 {
            let brow = F64x4::from_slice(&b[k * 4..k * 4 + 4]);
            acc = acc - brow * a[i * 4 + k];
        }
        acc.write_to(&mut c[i * 4..i * 4 + 4]);
    }
}

/// `c = a * b` (block·block product into a fresh block).
#[inline]
pub fn matmul(a: &Block4, b: &Block4) -> Block4 {
    let mut c = ZERO_BLOCK;
    for i in 0..4 {
        for k in 0..4 {
            let aik = a[i * 4 + k];
            for j in 0..4 {
                c[i * 4 + j] += aik * b[k * 4 + j];
            }
        }
    }
    c
}

/// Inverts a 4×4 block by Gauss-Jordan with partial pivoting.
/// Returns `None` when the block is numerically singular.
pub fn invert(a: &Block4) -> Option<Block4> {
    let mut m = *a;
    let mut inv = identity();
    for col in 0..4 {
        let mut piv = col;
        for r in col + 1..4 {
            if m[r * 4 + col].abs() > m[piv * 4 + col].abs() {
                piv = r;
            }
        }
        let p = m[piv * 4 + col];
        if p.abs() < 1e-300 {
            return None;
        }
        if piv != col {
            for c in 0..4 {
                m.swap(col * 4 + c, piv * 4 + c);
                inv.swap(col * 4 + c, piv * 4 + c);
            }
        }
        let d = 1.0 / m[col * 4 + col];
        for c in 0..4 {
            m[col * 4 + c] *= d;
            inv[col * 4 + c] *= d;
        }
        for r in 0..4 {
            if r == col {
                continue;
            }
            let f = m[r * 4 + col];
            if f == 0.0 {
                continue;
            }
            for c in 0..4 {
                m[r * 4 + c] -= f * m[col * 4 + c];
                inv[r * 4 + c] -= f * inv[col * 4 + c];
            }
        }
    }
    Some(inv)
}

/// Frobenius norm of a block.
pub fn fro_norm(a: &Block4) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_util::Rng64;

    fn random_block(rng: &mut Rng64) -> Block4 {
        let mut b = ZERO_BLOCK;
        for x in &mut b {
            *x = rng.range_f64(-1.0, 1.0);
        }
        // make diagonally dominant so inversion is well-conditioned
        for i in 0..4 {
            b[i * 4 + i] += 5.0;
        }
        b
    }

    #[test]
    fn matvec_identity() {
        let i = identity();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        matvec_acc(&i, &x, &mut y);
        assert_eq!(y, x);
        matvec_sub(&i, &x, &mut y);
        assert_eq!(y, [0.0; 4]);
    }

    #[test]
    fn simd_matvec_matches_scalar() {
        let mut rng = Rng64::new(5);
        for _ in 0..100 {
            let a = random_block(&mut rng);
            let x = [
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
            ];
            let mut y1 = [1.0, -1.0, 2.0, -2.0];
            let mut y2 = y1;
            matvec_sub(&a, &x, &mut y1);
            matvec_sub_simd(&a, &x, &mut y2);
            for k in 0..4 {
                assert!((y1[k] - y2[k]).abs() < 1e-13, "lane {k}");
            }
        }
    }

    #[test]
    fn simd_matmul_matches_scalar() {
        let mut rng = Rng64::new(6);
        for _ in 0..100 {
            let a = random_block(&mut rng);
            let b = random_block(&mut rng);
            let mut c1 = random_block(&mut rng);
            let mut c2 = c1;
            matmul_sub(&a, &b, &mut c1);
            matmul_sub_simd(&a, &b, &mut c2);
            for k in 0..16 {
                assert!((c1[k] - c2[k]).abs() < 1e-12, "entry {k}");
            }
        }
    }

    #[test]
    fn invert_roundtrip() {
        let mut rng = Rng64::new(7);
        for _ in 0..100 {
            let a = random_block(&mut rng);
            let ainv = invert(&a).expect("dominant block is invertible");
            let prod = matmul(&a, &ainv);
            let id = identity();
            for k in 0..16 {
                assert!((prod[k] - id[k]).abs() < 1e-10, "entry {k}: {}", prod[k]);
            }
        }
    }

    #[test]
    fn invert_singular_returns_none() {
        let mut a = ZERO_BLOCK;
        a[0] = 1.0; // rank-1
        assert!(invert(&a).is_none());
    }

    #[test]
    fn invert_permutation_block() {
        // A permutation block has zero diagonal: exercises pivoting.
        let mut p = ZERO_BLOCK;
        p[0 * 4 + 1] = 1.0;
        p[1 * 4 + 0] = 1.0;
        p[2 * 4 + 3] = 1.0;
        p[3 * 4 + 2] = 1.0;
        let pinv = invert(&p).unwrap();
        let prod = matmul(&p, &pinv);
        let id = identity();
        for k in 0..16 {
            assert!((prod[k] - id[k]).abs() < 1e-14);
        }
    }

    #[test]
    fn matmul_associates_with_matvec() {
        let mut rng = Rng64::new(8);
        let a = random_block(&mut rng);
        let b = random_block(&mut rng);
        let x = [1.0, 2.0, -1.0, 0.5];
        // (a*b)x == a(bx)
        let ab = matmul(&a, &b);
        let mut y1 = [0.0; 4];
        matvec_acc(&ab, &x, &mut y1);
        let mut bx = [0.0; 4];
        matvec_acc(&b, &x, &mut bx);
        let mut y2 = [0.0; 4];
        matvec_acc(&a, &bx, &mut y2);
        for k in 0..4 {
            assert!((y1[k] - y2[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn fro_norm_of_identity() {
        assert!((fro_norm(&identity()) - 2.0).abs() < 1e-15);
    }
}
