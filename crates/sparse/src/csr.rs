//! Scalar (point) CSR — the ablation baseline for BCSR.
//!
//! The 1999 PETSc-FUN3D work showed blocking the Jacobian 4×4 is a large
//! win over scalar CSR (fewer index loads, two cache lines per block).
//! This module provides the scalar equivalent so the benchmark suite can
//! re-measure that claim (`bench/bcsr_vs_csr`).

/// A scalar CSR matrix.
#[derive(Clone, Debug)]
pub struct Csr {
    /// Row pointers, length `n + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices, ascending within each row.
    pub col_idx: Vec<u32>,
    /// Nonzero values.
    pub values: Vec<f64>,
}

impl Csr {
    /// Expands a BCSR matrix into scalar CSR (each 4×4 block becomes 16
    /// scalar entries).
    pub fn from_bcsr(a: &crate::Bcsr4) -> Csr {
        let nrows = a.nrows() * 4;
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for br in 0..a.nrows() {
            for i in 0..4 {
                for k in a.row_ptr[br]..a.row_ptr[br + 1] {
                    let bc = a.col_idx[k] as usize;
                    let b = a.block(k);
                    for j in 0..4 {
                        col_idx.push((bc * 4 + j) as u32);
                        values.push(b[i * 4 + j]);
                    }
                }
                row_ptr.push(col_idx.len());
            }
        }
        Csr {
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows());
        assert_eq!(y.len(), self.nrows());
        for r in 0..self.nrows() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            y[r] = acc;
        }
    }

    /// Scalar forward/backward solve of `L U x = b` where this matrix
    /// holds a scalar ILU factorization in-place (unit lower, upper with
    /// explicit diagonal). Used only by the ablation bench to compare
    /// solve costs; the production path is the block solver.
    pub fn trsv_inplace_factors(&self, b: &[f64]) -> Vec<f64> {
        let n = self.nrows();
        let mut x = b.to_vec();
        // forward: unit lower part (cols < r)
        for r in 0..n {
            let mut acc = x[r];
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                if c < r {
                    acc -= self.values[k] * x[c];
                }
            }
            x[r] = acc;
        }
        // backward: upper incl. diagonal
        for r in (0..n).rev() {
            let mut acc = x[r];
            let mut diag = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                if c > r {
                    acc -= self.values[k] * x[c];
                } else if c == r {
                    diag = self.values[k];
                }
            }
            assert!(diag != 0.0, "zero diagonal in scalar factors");
            x[r] = acc / diag;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bcsr4;

    fn block_matrix() -> Bcsr4 {
        let mut a = Bcsr4::from_pattern(&[vec![0, 1], vec![0, 1]]);
        a.fill_diag_dominant(3);
        a
    }

    #[test]
    fn expansion_dimensions() {
        let a = block_matrix();
        let c = Csr::from_bcsr(&a);
        assert_eq!(c.nrows(), a.dim());
        assert_eq!(c.nnz(), a.nblocks() * 16);
    }

    #[test]
    fn spmv_matches_block_spmv() {
        let a = block_matrix();
        let c = Csr::from_bcsr(&a);
        let n = a.dim();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut yb = vec![0.0; n];
        let mut ys = vec![0.0; n];
        a.spmv(&x, &mut yb);
        c.spmv(&x, &mut ys);
        for i in 0..n {
            assert!((yb[i] - ys[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn scalar_trsv_solves_triangular_system() {
        // Build explicit scalar factors: L = [[1,0],[0.5,1]], U = [[2,1],[0,4]]
        // A = L*U = [[2,1],[1,4.5]]
        // row 1 holds L10=0.5 at col 0 plus U11=4.0 at col 1.
        let csr = Csr {
            row_ptr: vec![0, 2, 4],
            col_idx: vec![0, 1, 0, 1],
            values: vec![2.0, 1.0, 0.5, 4.0],
        };
        let b = vec![5.0, 10.5];
        let x = csr.trsv_inplace_factors(&b);
        // forward: y0=5, y1=10.5-0.5*5=8; backward: x1=8/4=2, x0=(5-1*2)/2=1.5
        assert!((x[0] - 1.5).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }
}
