//! Block sparse triangular solves.
//!
//! `solve` applies `x = U⁻¹ L⁻¹ b` with the stored inverted diagonals:
//! the forward sweep has an implied unit diagonal, the backward sweep
//! multiplies by `D⁻¹` instead of dividing — the PETSc data-layout
//! optimization [17]. The per-block kernel is a 4×4 matvec with no reuse
//! across blocks (streaming), which is why the paper's TRSV is bandwidth-
//! bound and reaches 94% of STREAM when parallelized with P2P sync.

use crate::block;
use crate::ilu::IluFactors;

/// Serial forward substitution: `y = L⁻¹ b` (unit diagonal).
pub fn forward(f: &IluFactors, b: &[f64], y: &mut [f64]) {
    let n = f.nrows();
    assert_eq!(b.len(), n * 4);
    assert_eq!(y.len(), n * 4);
    for i in 0..n {
        let mut acc: [f64; 4] = b[i * 4..i * 4 + 4].try_into().unwrap();
        for k in f.l.row_ptr[i]..f.l.row_ptr[i + 1] {
            let j = f.l.col_idx[k] as usize;
            let xj: &[f64; 4] = y[j * 4..j * 4 + 4].try_into().unwrap();
            block::matvec_sub_simd(f.l.block(k), xj, &mut acc);
        }
        y[i * 4..i * 4 + 4].copy_from_slice(&acc);
    }
}

/// Serial backward substitution: `x = U⁻¹ y`, using the stored `D⁻¹`.
pub fn backward(f: &IluFactors, y: &[f64], x: &mut [f64]) {
    let n = f.nrows();
    assert_eq!(y.len(), n * 4);
    assert_eq!(x.len(), n * 4);
    for i in (0..n).rev() {
        let mut acc: [f64; 4] = y[i * 4..i * 4 + 4].try_into().unwrap();
        for k in f.u.row_ptr[i]..f.u.row_ptr[i + 1] {
            let j = f.u.col_idx[k] as usize;
            let xj: &[f64; 4] = x[j * 4..j * 4 + 4].try_into().unwrap();
            block::matvec_sub_simd(f.u.block(k), xj, &mut acc);
        }
        let mut out = [0.0f64; 4];
        block::matvec_acc(f.dinv_block(i), &acc, &mut out);
        x[i * 4..i * 4 + 4].copy_from_slice(&out);
    }
}

/// Full preconditioner application `x = (LU)⁻¹ b`.
pub fn solve(f: &IluFactors, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; b.len()];
    forward(f, b, &mut y);
    let mut x = vec![0.0; b.len()];
    backward(f, &y, &mut x);
    x
}

/// In-place variant writing into caller-provided buffers (no allocation
/// in the solver hot loop).
pub fn solve_into(f: &IluFactors, b: &[f64], scratch: &mut [f64], x: &mut [f64]) {
    forward(f, b, scratch);
    backward(f, scratch, x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcsr::Bcsr4;
    use crate::ilu;

    #[test]
    fn forward_solves_lower_system() {
        // Random lower-triangular block system built via ILU of a
        // tridiagonal matrix; verify L y = b by applying L back.
        let edges: Vec<[u32; 2]> = (0..5).map(|i| [i, i + 1]).collect();
        let mut a = Bcsr4::from_edges(6, &edges);
        a.fill_diag_dominant(21);
        let f = ilu::ilu0(&a);
        let n = f.nrows() * 4;
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut y = vec![0.0; n];
        forward(&f, &b, &mut y);
        // apply L (unit diag): r_i = y_i + Σ L_ij y_j must equal b
        for i in 0..f.nrows() {
            let mut acc: [f64; 4] = y[i * 4..i * 4 + 4].try_into().unwrap();
            for k in f.l.row_ptr[i]..f.l.row_ptr[i + 1] {
                let j = f.l.col_idx[k] as usize;
                let yj: &[f64; 4] = y[j * 4..j * 4 + 4].try_into().unwrap();
                crate::block::matvec_acc(f.l.block(k), yj, &mut acc);
            }
            for c in 0..4 {
                assert!((acc[c] - b[i * 4 + c]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn backward_solves_upper_system() {
        let edges: Vec<[u32; 2]> = (0..5).map(|i| [i, i + 1]).collect();
        let mut a = Bcsr4::from_edges(6, &edges);
        a.fill_diag_dominant(22);
        let f = ilu::ilu0(&a);
        let n = f.nrows() * 4;
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut x = vec![0.0; n];
        backward(&f, &y, &mut x);
        // apply U (D + strict upper): r_i = D_i x_i + Σ U_ij x_j == y
        for i in 0..f.nrows() {
            let d = crate::block::invert(f.dinv_block(i)).unwrap();
            let xi: &[f64; 4] = x[i * 4..i * 4 + 4].try_into().unwrap();
            let mut acc = [0.0f64; 4];
            crate::block::matvec_acc(&d, xi, &mut acc);
            for k in f.u.row_ptr[i]..f.u.row_ptr[i + 1] {
                let j = f.u.col_idx[k] as usize;
                let xj: &[f64; 4] = x[j * 4..j * 4 + 4].try_into().unwrap();
                crate::block::matvec_acc(f.u.block(k), xj, &mut acc);
            }
            for c in 0..4 {
                assert!(
                    (acc[c] - y[i * 4 + c]).abs() < 1e-9,
                    "row {i} comp {c}: {} vs {}",
                    acc[c],
                    y[i * 4 + c]
                );
            }
        }
    }

    #[test]
    fn solve_into_matches_solve() {
        let edges: Vec<[u32; 2]> = (0..7).map(|i| [i, i + 1]).collect();
        let mut a = Bcsr4::from_edges(8, &edges);
        a.fill_diag_dominant(23);
        let f = ilu::ilu0(&a);
        let n = f.nrows() * 4;
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x1 = solve(&f, &b);
        let mut scratch = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        solve_into(&f, &b, &mut scratch, &mut x2);
        assert_eq!(x1, x2);
    }
}
