//! Sparsified point-to-point synchronization (Park et al. [26]).
//!
//! Rows are assigned to threads in contiguous, nnz-balanced chunks; each
//! thread processes its rows in order and publishes a per-thread progress
//! counter. A row that reads a row owned by another thread must wait for
//! that thread's counter to pass the producer's position. Two
//! sparsifications shrink the synchronization:
//!
//! 1. **per-thread aggregation** — waiting for position `p` of thread `t`
//!    implies every earlier row of `t` is done, so only the *maximum*
//!    needed position per producer thread is waited on;
//! 2. **transitive reduction over program order** — a thread's rows
//!    execute in order, so a wait already performed by an earlier row of
//!    the same thread never needs repeating.
//!
//! Together these remove the per-level barriers (and most of the waits)
//! of level scheduling; the number of surviving waits is exposed for the
//! machine model.

use crate::block;
use crate::ilu::IluFactors;
use crate::Bcsr4;
use fun3d_threads::{TeamSlice, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One row's task in a thread's program: the row id and the (sparsified)
/// waits that must complete first.
#[derive(Clone, Debug)]
pub struct RowTask {
    /// The row to process.
    pub row: u32,
    /// `(producer thread, position)` pairs: wait until the producer's
    /// progress counter is `> position`.
    pub waits: Vec<(u32, u32)>,
}

/// A P2P schedule for one triangular sweep direction.
#[derive(Clone, Debug)]
pub struct P2pSchedule {
    /// Per-thread ordered task lists.
    pub tasks: Vec<Vec<RowTask>>,
    /// Owning thread of each row.
    pub owner: Vec<u32>,
    /// Position of each row within its owner's program.
    pub position: Vec<u32>,
    /// Total waits after sparsification.
    pub nwaits: usize,
    /// Total cross-thread dependency edges before sparsification.
    pub raw_cross_deps: usize,
}

impl P2pSchedule {
    /// Builds the forward-sweep schedule from the `L` pattern: row `i`
    /// depends on the columns of `L` row `i`.
    pub fn forward(l: &Bcsr4, nthreads: usize) -> P2pSchedule {
        let n = l.nrows();
        let order: Vec<u32> = (0..n as u32).collect();
        Self::build(n, nthreads, &order, |i| {
            l.col_idx[l.row_ptr[i]..l.row_ptr[i + 1]].iter().copied()
        })
    }

    /// Builds the backward-sweep schedule from the `U` pattern: rows are
    /// processed in descending order and row `i` depends on the columns of
    /// `U` row `i` (all `> i`).
    pub fn backward(u: &Bcsr4, nthreads: usize) -> P2pSchedule {
        let n = u.nrows();
        let order: Vec<u32> = (0..n as u32).rev().collect();
        Self::build(n, nthreads, &order, |i| {
            u.col_idx[u.row_ptr[i]..u.row_ptr[i + 1]].iter().copied()
        })
    }

    /// `order` is the global processing order (a topological order of the
    /// dependency DAG); contiguous chunks of it go to each thread.
    fn build<I>(
        n: usize,
        nthreads: usize,
        order: &[u32],
        deps: impl Fn(usize) -> I,
    ) -> P2pSchedule
    where
        I: Iterator<Item = u32>,
    {
        assert!(nthreads >= 1);
        // nnz-balanced contiguous chunking of the processing order.
        let weights: Vec<usize> = order
            .iter()
            .map(|&r| 1 + deps(r as usize).count())
            .collect();
        let chunks = balanced_chunks(&weights, nthreads);

        let mut owner = vec![0u32; n];
        let mut position = vec![0u32; n];
        for (t, range) in chunks.iter().enumerate() {
            for (pos, idx) in range.clone().enumerate() {
                let row = order[idx] as usize;
                owner[row] = t as u32;
                position[row] = pos as u32;
            }
        }

        let mut tasks: Vec<Vec<RowTask>> = vec![Vec::new(); nthreads];
        let mut nwaits = 0usize;
        let mut raw_cross = 0usize;
        for (t, range) in chunks.iter().enumerate() {
            // last position of each producer thread already waited for
            let mut last_waited = vec![-1i64; nthreads];
            for idx in range.clone() {
                let row = order[idx] as usize;
                // max needed position per producer thread for this row
                let mut needed = vec![-1i64; nthreads];
                for d in deps(row) {
                    let pt = owner[d as usize] as usize;
                    if pt != t {
                        raw_cross += 1;
                        needed[pt] = needed[pt].max(position[d as usize] as i64);
                    }
                }
                let mut waits = Vec::new();
                for (pt, &p) in needed.iter().enumerate() {
                    if p > last_waited[pt] {
                        waits.push((pt as u32, p as u32));
                        last_waited[pt] = p;
                        nwaits += 1;
                    }
                }
                tasks[t].push(RowTask {
                    row: row as u32,
                    waits,
                });
            }
        }
        P2pSchedule {
            tasks,
            owner,
            position,
            nwaits,
            raw_cross_deps: raw_cross,
        }
    }

    /// Number of threads.
    pub fn nthreads(&self) -> usize {
        self.tasks.len()
    }

    /// Fraction of raw cross-thread dependencies eliminated by the
    /// sparsification (0 when there were none).
    pub fn sparsification_ratio(&self) -> f64 {
        if self.raw_cross_deps == 0 {
            0.0
        } else {
            1.0 - self.nwaits as f64 / self.raw_cross_deps as f64
        }
    }
}

/// Splits indices `0..weights.len()` into `k` contiguous chunks with
/// near-equal total weight.
fn balanced_chunks(weights: &[usize], k: usize) -> Vec<std::ops::Range<usize>> {
    let total: usize = weights.iter().sum();
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    let mut acc = 0usize;
    let mut consumed = 0usize;
    for t in 0..k {
        let remaining_chunks = k - t;
        let target = (total - consumed + remaining_chunks - 1) / remaining_chunks;
        let mut end = start;
        while end < weights.len() && (acc < target || remaining_chunks == 1) {
            acc += weights[end];
            end += 1;
        }
        // Leave enough rows for the remaining chunks when possible.
        let max_end = weights.len().saturating_sub(remaining_chunks - 1);
        if end > max_end && max_end > start {
            while end > max_end {
                end -= 1;
                acc -= weights[end];
            }
        }
        out.push(start..end);
        consumed += acc;
        acc = 0;
        start = end;
    }
    debug_assert_eq!(start, weights.len());
    out
}

/// Per-thread progress counters for the P2P protocol. One instance may
/// be reused across sweeps: each thread resets **its own** counter and a
/// barrier must separate the resets from the first wait of the sweep.
pub struct P2pProgress {
    counters: Vec<AtomicUsize>,
}

impl P2pProgress {
    /// Fresh counters (all zero) for `nthreads` producers.
    pub fn new(nthreads: usize) -> P2pProgress {
        P2pProgress {
            counters: (0..nthreads).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Number of producer threads.
    pub fn nthreads(&self) -> usize {
        self.counters.len()
    }

    /// Resets this thread's counter. Call from every team member, then
    /// cross a barrier before the sweep begins.
    pub fn reset_mine(&self, tid: usize) {
        self.counters[tid].store(0, Ordering::Relaxed);
    }

    /// Acquire-spins until producer `pt`'s counter passes `pos`.
    fn wait_for(&self, pt: usize, pos: usize) {
        let target = pos + 1;
        let cell = &self.counters[pt];
        let mut spins = 0u32;
        while cell.load(Ordering::Acquire) < target {
            spins = spins.wrapping_add(1);
            if spins % 64 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Publishes one more completed row for this thread.
    fn publish(&self, tid: usize) {
        self.counters[tid].fetch_add(1, Ordering::Release);
    }
}

/// P2P forward sweep slice for one member of an already-running SPMD
/// region. `progress` must be zeroed (fresh, or `reset_mine` + barrier)
/// on entry. `b` and `y` may alias: row `i`'s input is read before its
/// output is stored.
pub fn forward_p2p_team(
    f: &IluFactors,
    b: TeamSlice,
    y: TeamSlice,
    tid: usize,
    sched: &P2pSchedule,
    progress: &P2pProgress,
) {
    for task in &sched.tasks[tid] {
        for &(pt, pos) in &task.waits {
            progress.wait_for(pt as usize, pos as usize);
        }
        let i = task.row as usize;
        // SAFETY: row i is owned by this thread; b[i] is never written
        // during the sweep (in-place aliasing reads before the store).
        let mut acc: [f64; 4] = unsafe { *(b.as_ptr().add(i * 4) as *const [f64; 4]) };
        for k in f.l.row_ptr[i]..f.l.row_ptr[i + 1] {
            let j = f.l.col_idx[k] as usize;
            // SAFETY: producer write ordered by the Acquire spin above
            // (or same-thread program order).
            let xj: &[f64; 4] = unsafe { &*(y.as_ptr().add(j * 4) as *const [f64; 4]) };
            block::matvec_sub_simd(f.l.block(k), xj, &mut acc);
        }
        // SAFETY: each row written by exactly one thread.
        unsafe { std::ptr::copy_nonoverlapping(acc.as_ptr(), y.as_ptr().add(i * 4), 4) };
        progress.publish(tid);
    }
}

/// P2P backward sweep slice for one member of an already-running SPMD
/// region. Same contract as [`forward_p2p_team`].
pub fn backward_p2p_team(
    f: &IluFactors,
    y: TeamSlice,
    x: TeamSlice,
    tid: usize,
    sched: &P2pSchedule,
    progress: &P2pProgress,
) {
    for task in &sched.tasks[tid] {
        for &(pt, pos) in &task.waits {
            progress.wait_for(pt as usize, pos as usize);
        }
        let i = task.row as usize;
        // SAFETY: row ownership as in the forward sweep.
        let mut acc: [f64; 4] = unsafe { *(y.as_ptr().add(i * 4) as *const [f64; 4]) };
        for k in f.u.row_ptr[i]..f.u.row_ptr[i + 1] {
            let j = f.u.col_idx[k] as usize;
            // SAFETY: ordered by Acquire spin or program order.
            let xj: &[f64; 4] = unsafe { &*(x.as_ptr().add(j * 4) as *const [f64; 4]) };
            block::matvec_sub_simd(f.u.block(k), xj, &mut acc);
        }
        let mut out = [0.0f64; 4];
        block::matvec_acc(f.dinv_block(i), &acc, &mut out);
        // SAFETY: unique row ownership.
        unsafe { std::ptr::copy_nonoverlapping(out.as_ptr(), x.as_ptr().add(i * 4), 4) };
        progress.publish(tid);
    }
}

/// Executes a P2P-scheduled forward sweep.
pub fn forward_p2p(
    f: &IluFactors,
    b: &[f64],
    y: &mut [f64],
    pool: &ThreadPool,
    sched: &P2pSchedule,
) {
    assert_eq!(pool.size(), sched.nthreads());
    let progress = P2pProgress::new(sched.nthreads());
    let bp = TeamSlice::from_raw(b.as_ptr() as *mut f64, b.len());
    let yp = TeamSlice::new(y);
    pool.run(|tid| forward_p2p_team(f, bp, yp, tid, sched, &progress));
}

/// Executes a P2P-scheduled backward sweep.
pub fn backward_p2p(
    f: &IluFactors,
    y: &[f64],
    x: &mut [f64],
    pool: &ThreadPool,
    sched: &P2pSchedule,
) {
    assert_eq!(pool.size(), sched.nthreads());
    let progress = P2pProgress::new(sched.nthreads());
    let yp = TeamSlice::from_raw(y.as_ptr() as *mut f64, y.len());
    let xp = TeamSlice::new(x);
    pool.run(|tid| backward_p2p_team(f, yp, xp, tid, sched, &progress));
}

/// Full P2P preconditioner application.
pub fn solve_p2p(
    f: &IluFactors,
    b: &[f64],
    pool: &ThreadPool,
    fwd: &P2pSchedule,
    bwd: &P2pSchedule,
) -> Vec<f64> {
    let mut y = vec![0.0; b.len()];
    forward_p2p(f, b, &mut y, pool, fwd);
    let mut x = vec![0.0; b.len()];
    backward_p2p(f, &y, &mut x, pool, bwd);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ilu, trsv};

    fn mesh_factors(seed: u64) -> IluFactors {
        let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
        let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(seed);
        ilu::ilu0(&a)
    }

    #[test]
    fn schedule_covers_all_rows_once() {
        let f = mesh_factors(41);
        for nt in [1usize, 3, 4] {
            let s = P2pSchedule::forward(&f.l, nt);
            let mut seen = vec![false; f.nrows()];
            for t in &s.tasks {
                for task in t {
                    assert!(!seen[task.row as usize]);
                    seen[task.row as usize] = true;
                }
            }
            assert!(seen.iter().all(|&x| x));
        }
    }

    #[test]
    fn waits_respect_dependencies() {
        // Every cross-thread dependency must be covered by some wait with
        // position >= the producer's position.
        let f = mesh_factors(42);
        let nt = 4;
        let s = P2pSchedule::forward(&f.l, nt);
        for (t, tasks) in s.tasks.iter().enumerate() {
            let mut waited = vec![-1i64; nt];
            for task in tasks {
                for &(pt, pos) in &task.waits {
                    waited[pt as usize] = waited[pt as usize].max(pos as i64);
                }
                let i = task.row as usize;
                for k in f.l.row_ptr[i]..f.l.row_ptr[i + 1] {
                    let j = f.l.col_idx[k] as usize;
                    let pt = s.owner[j] as usize;
                    if pt != t {
                        assert!(
                            waited[pt] >= s.position[j] as i64,
                            "row {i} dep {j} not covered"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sparsification_reduces_waits() {
        let f = mesh_factors(43);
        let s = P2pSchedule::forward(&f.l, 4);
        assert!(s.nwaits <= s.raw_cross_deps);
        if s.raw_cross_deps > 0 {
            assert!(
                s.sparsification_ratio() > 0.3,
                "expected substantial reduction, got {}",
                s.sparsification_ratio()
            );
        }
    }

    #[test]
    fn p2p_solve_matches_serial() {
        let f = mesh_factors(44);
        let n = f.nrows() * 4;
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
        let serial = trsv::solve(&f, &b);
        for nt in [1usize, 2, 4] {
            let pool = ThreadPool::new(nt);
            let fwd = P2pSchedule::forward(&f.l, nt);
            let bwd = P2pSchedule::backward(&f.u, nt);
            let par = solve_p2p(&f, &b, &pool, &fwd, &bwd);
            assert_eq!(serial, par, "nt={nt} must be bitwise identical");
        }
    }

    #[test]
    fn balanced_chunks_cover_and_balance() {
        let w = vec![1usize; 100];
        let chunks = balanced_chunks(&w, 7);
        assert_eq!(chunks.len(), 7);
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, 100);
        for pair in chunks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 2);
    }

    #[test]
    fn balanced_chunks_weighted() {
        // One heavy item early: later chunks get more items.
        let mut w = vec![1usize; 20];
        w[0] = 50;
        let chunks = balanced_chunks(&w, 4);
        assert_eq!(chunks[0].len(), 1, "heavy head isolated: {chunks:?}");
        assert_eq!(chunks.last().unwrap().end, 20);
    }

    #[test]
    fn backward_schedule_positions_descend() {
        let f = mesh_factors(45);
        let s = P2pSchedule::backward(&f.u, 3);
        for tasks in &s.tasks {
            for pair in tasks.windows(2) {
                assert!(pair[0].row > pair[1].row, "backward order must descend");
            }
        }
    }
}
