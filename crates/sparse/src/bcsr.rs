//! Block compressed sparse row storage (4×4 blocks).

use crate::block::{self, Block4, BLOCK_DIM, BLOCK_LEN, ZERO_BLOCK};
use fun3d_threads::{TeamSlice, ThreadPool};

/// A square block-sparse matrix with 4×4 blocks (PETSc's BAIJ/"BCSR").
///
/// Block row `r` owns blocks `row_ptr[r]..row_ptr[r+1]`; `col_idx` holds
/// block column indices sorted ascending within each row; `blocks` holds
/// the 16 doubles of each block row-major, contiguous in row order — the
/// access order of SpMV and of the factorization.
#[derive(Clone, Debug)]
pub struct Bcsr4 {
    /// Block-row pointers, length `nrows + 1`.
    pub row_ptr: Vec<usize>,
    /// Block-column indices, ascending within each row.
    pub col_idx: Vec<u32>,
    /// Block values, 16 doubles per block.
    pub blocks: Vec<f64>,
}

impl Bcsr4 {
    /// Builds a zero matrix with the given pattern. `cols_of_row[r]` must
    /// be sorted ascending and unique.
    pub fn from_pattern(cols_of_row: &[Vec<u32>]) -> Self {
        let mut row_ptr = Vec::with_capacity(cols_of_row.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        for cols in cols_of_row {
            debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "unsorted pattern row");
            col_idx.extend_from_slice(cols);
            row_ptr.push(col_idx.len());
        }
        let blocks = vec![0.0; col_idx.len() * BLOCK_LEN];
        Bcsr4 {
            row_ptr,
            col_idx,
            blocks,
        }
    }

    /// Builds the vertex-neighbor pattern of a mesh: every row holds its
    /// diagonal plus one block per incident edge.
    pub fn from_edges(nvertices: usize, edges: &[[u32; 2]]) -> Self {
        let mut cols: Vec<Vec<u32>> = (0..nvertices).map(|v| vec![v as u32]).collect();
        for e in edges {
            cols[e[0] as usize].push(e[1]);
            cols[e[1] as usize].push(e[0]);
        }
        for c in &mut cols {
            c.sort_unstable();
            c.dedup();
        }
        Self::from_pattern(&cols)
    }

    /// Number of block rows.
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored blocks.
    pub fn nblocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Scalar dimension (`4 * nrows`).
    pub fn dim(&self) -> usize {
        self.nrows() * BLOCK_DIM
    }

    /// Immutable view of block `k` (position in `col_idx`).
    #[inline]
    pub fn block(&self, k: usize) -> &Block4 {
        self.blocks[k * BLOCK_LEN..(k + 1) * BLOCK_LEN]
            .try_into()
            .unwrap()
    }

    /// Mutable view of block `k`.
    #[inline]
    pub fn block_mut(&mut self, k: usize) -> &mut Block4 {
        (&mut self.blocks[k * BLOCK_LEN..(k + 1) * BLOCK_LEN])
            .try_into()
            .unwrap()
    }

    /// Position of block `(row, col)` in the storage, if present.
    pub fn find(&self, row: usize, col: u32) -> Option<usize> {
        let r = self.row_ptr[row]..self.row_ptr[row + 1];
        self.col_idx[r.clone()]
            .binary_search(&col)
            .ok()
            .map(|k| r.start + k)
    }

    /// Adds `v` into scalar entry `(i, j)` of block `(row, col)`; the
    /// block must exist in the pattern.
    pub fn add_entry(&mut self, row: usize, col: u32, i: usize, j: usize, v: f64) {
        let k = self
            .find(row, col)
            .expect("block missing from sparsity pattern");
        self.blocks[k * BLOCK_LEN + i * BLOCK_DIM + j] += v;
    }

    /// Adds a whole block into `(row, col)`; the block must exist.
    pub fn add_block(&mut self, row: usize, col: u32, b: &Block4) {
        let k = self
            .find(row, col)
            .expect("block missing from sparsity pattern");
        for (dst, src) in self.blocks[k * BLOCK_LEN..(k + 1) * BLOCK_LEN]
            .iter_mut()
            .zip(b)
        {
            *dst += src;
        }
    }

    /// Zeroes all values (pattern preserved).
    pub fn zero_values(&mut self) {
        self.blocks.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Serial block SpMV: `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        for r in 0..self.nrows() {
            let mut acc = [0.0f64; 4];
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let xv: &[f64; 4] = x[c * 4..c * 4 + 4].try_into().unwrap();
                block::matvec_acc(self.block(k), xv, &mut acc);
            }
            y[r * 4..r * 4 + 4].copy_from_slice(&acc);
        }
    }

    /// Row-range slice of the SpMV, writing through a raw pointer. The
    /// single arithmetic body shared by `spmv_parallel` and `spmv_team`,
    /// so the two are bitwise identical at equal chunking.
    ///
    /// # Safety
    /// Rows in `range` must be written by exactly this caller, and `y`
    /// must have room for `dim()` values.
    unsafe fn spmv_rows(&self, range: std::ops::Range<usize>, x: &[f64], y: *mut f64) {
        for r in range {
            let mut acc = [0.0f64; 4];
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let xv: &[f64; 4] = x[c * 4..c * 4 + 4].try_into().unwrap();
                block::matvec_acc(self.block(k), xv, &mut acc);
            }
            std::ptr::copy_nonoverlapping(acc.as_ptr(), y.add(r * 4), 4);
        }
    }

    /// Threaded block SpMV: rows split statically over the pool. Rows are
    /// written disjointly, so no synchronization is needed.
    pub fn spmv_parallel(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        let nrows = self.nrows();
        let y_ptr = SendPtr(y.as_mut_ptr());
        pool.parallel_for(nrows, |_tid, range| {
            let y_ptr = &y_ptr;
            // SAFETY: each row index r is visited by exactly one thread
            // (ranges are disjoint), so writes never overlap.
            unsafe { self.spmv_rows(range, x, y_ptr.0) };
        });
    }

    /// SpMV slice for one member of an already-running SPMD region: this
    /// thread computes its static chunk of rows (the same chunking as
    /// `spmv_parallel`, hence bitwise-identical results). Synchronization
    /// is the caller's: `x` must be fully published (barrier) before the
    /// call, and a barrier must separate the call from any cross-chunk
    /// read of `y`.
    pub fn spmv_team(&self, tid: usize, nthreads: usize, x: &[f64], y: TeamSlice) {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        let range = fun3d_threads::chunk_range(self.nrows(), nthreads, tid);
        // SAFETY: chunk_range assigns each row to exactly one tid.
        unsafe { self.spmv_rows(range, x, y.as_ptr()) };
    }

    /// Extracts the dense equivalent (for small test matrices only).
    pub fn to_dense(&self) -> Vec<f64> {
        let n = self.dim();
        let mut d = vec![0.0; n * n];
        for r in 0..self.nrows() {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let b = self.block(k);
                for i in 0..4 {
                    for j in 0..4 {
                        d[(r * 4 + i) * n + (c * 4 + j)] = b[i * 4 + j];
                    }
                }
            }
        }
        d
    }

    /// Fills values to make the matrix block diagonally dominant with
    /// deterministic pseudo-random off-diagonals — the synthetic stand-in
    /// for an assembled Jacobian in kernel-level experiments.
    pub fn fill_diag_dominant(&mut self, seed: u64) {
        let mut rng = fun3d_util::Rng64::new(seed);
        let nrows = self.nrows();
        for r in 0..nrows {
            let mut diag_boost = [0.0f64; 4];
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let is_diag = self.col_idx[k] as usize == r;
                let b = self.block_mut(k);
                for (pos, x) in b.iter_mut().enumerate() {
                    *x = rng.range_f64(-1.0, 1.0);
                    if !is_diag {
                        diag_boost[pos / 4] += x.abs();
                    }
                }
            }
            let kd = self.find(r, r as u32).expect("diagonal block present");
            let b = self.block_mut(kd);
            for i in 0..4 {
                let off_in_block: f64 =
                    (0..4).filter(|&j| j != i).map(|j| b[i * 4 + j].abs()).sum();
                b[i * 4 + i] = 2.0 + diag_boost[i] + off_in_block;
            }
        }
    }

    /// Bytes touched by one full sweep over the stored blocks plus the
    /// solution/rhs vectors — the traffic estimate used for the bandwidth
    /// figures (Fig. 7b).
    pub fn sweep_bytes(&self) -> usize {
        // blocks + col indices + x and y vectors once each
        self.blocks.len() * 8 + self.col_idx.len() * 4 + 2 * self.dim() * 8
    }
}

/// Zero block constant re-exported for pattern builders.
pub const EMPTY_BLOCK: Block4 = ZERO_BLOCK;

struct SendPtr(*mut f64);
// SAFETY: used only with disjoint index ranges per thread.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;

    fn tiny_matrix() -> Bcsr4 {
        // 3 block rows, tridiagonal pattern.
        let mut a = Bcsr4::from_pattern(&[vec![0, 1], vec![0, 1, 2], vec![1, 2]]);
        a.fill_diag_dominant(42);
        a
    }

    #[test]
    fn pattern_construction() {
        let a = tiny_matrix();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nblocks(), 7);
        assert_eq!(a.dim(), 12);
        assert!(a.find(0, 0).is_some());
        assert!(a.find(0, 2).is_none());
    }

    #[test]
    fn from_edges_pattern() {
        let a = Bcsr4::from_edges(3, &[[0, 1], [1, 2]]);
        assert_eq!(a.nblocks(), 3 + 2 * 2);
        assert!(a.find(0, 1).is_some());
        assert!(a.find(1, 0).is_some());
        assert!(a.find(0, 2).is_none());
    }

    #[test]
    fn spmv_matches_dense() {
        let a = tiny_matrix();
        let n = a.dim();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; n];
        a.spmv(&x, &mut y);
        let d = a.to_dense();
        for i in 0..n {
            let expect: f64 = (0..n).map(|j| d[i * n + j] * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn parallel_spmv_matches_serial() {
        let a = Bcsr4::from_edges(
            64,
            &(0..63).map(|i| [i as u32, i as u32 + 1]).collect::<Vec<_>>(),
        );
        let mut a = a;
        a.fill_diag_dominant(7);
        let n = a.dim();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv(&x, &mut y1);
        let pool = ThreadPool::new(4);
        a.spmv_parallel(&pool, &x, &mut y2);
        assert_eq!(y1, y2, "parallel SpMV must be bitwise identical");
    }

    #[test]
    fn add_entry_and_block() {
        let mut a = Bcsr4::from_pattern(&[vec![0]]);
        a.add_entry(0, 0, 1, 2, 5.0);
        assert_eq!(a.block(0)[1 * 4 + 2], 5.0);
        let mut b = ZERO_BLOCK;
        b[0] = 1.0;
        a.add_block(0, 0, &b);
        assert_eq!(a.block(0)[0], 1.0);
        a.zero_values();
        assert!(a.blocks.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "block missing")]
    fn add_outside_pattern_panics() {
        let mut a = Bcsr4::from_pattern(&[vec![0], vec![1]]);
        a.add_entry(0, 1, 0, 0, 1.0);
    }

    #[test]
    fn diag_dominance_holds() {
        let a = tiny_matrix();
        let d = a.to_dense();
        let n = a.dim();
        for i in 0..n {
            let diag = d[i * n + i].abs();
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| d[i * n + j].abs()).sum();
            assert!(diag > off, "row {i}: diag {diag} <= off {off}");
        }
    }

    #[test]
    fn dense_solve_consistency() {
        // to_dense + dense::solve gives a usable reference path.
        let a = tiny_matrix();
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        let x = dense::solve(&a.to_dense(), &b, n);
        for i in 0..n {
            assert!((x[i] - xref[i]).abs() < 1e-9);
        }
    }
}
