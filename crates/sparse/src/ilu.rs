//! Incomplete LU factorization on 4×4 block matrices.
//!
//! ILU(0) keeps the pattern of A; ILU(k) first runs a symbolic level-of-
//! fill pass (Chow & Saad [23]) and factors on the expanded pattern. The
//! original PETSc-FUN3D uses ILU(1) inside the additive Schwarz
//! preconditioner; the paper's Table II shows the ILU-0 vs ILU-1 tradeoff
//! between convergence (fewer iterations with fill) and available
//! parallelism (shorter dependency chains without).
//!
//! Two PETSc layout optimizations from the paper are reproduced:
//! * diagonal blocks are **inverted during factorization** and stored, so
//!   the backward solve multiplies instead of solving per row [17];
//! * L and U are stored separately in the order the solves traverse them.
//!
//! The paper's algorithmic optimization for threading is also here: the
//! per-row working buffer can be **compressed** ([`TempBuffer::Compressed`])
//! — indexed through the static pattern of the row instead of a full
//! n-wide scratch array — shrinking the per-thread working set.

use crate::bcsr::Bcsr4;
use crate::block::{self, Block4, BLOCK_LEN, ZERO_BLOCK};

/// Which working buffer the numeric factorization uses; both produce
/// identical factors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TempBuffer {
    /// One block slot per matrix row (large stride, big working set).
    Full,
    /// One block slot per pattern entry of the current row, mapped through
    /// binary search on the static pattern (the paper's optimization).
    Compressed,
}

/// The result of a block ILU factorization.
#[derive(Clone, Debug)]
pub struct IluFactors {
    /// Strictly-lower blocks of each row (unit diagonal implied), stored
    /// in forward-solve order.
    pub l: Bcsr4,
    /// Strictly-upper blocks of each row, stored row-major (the backward
    /// solve walks rows in reverse).
    pub u: Bcsr4,
    /// Inverted diagonal blocks, 16 doubles per row.
    pub dinv: Vec<f64>,
}

impl IluFactors {
    /// Number of block rows.
    pub fn nrows(&self) -> usize {
        self.dinv.len() / BLOCK_LEN
    }

    /// The inverted diagonal block of row `r`.
    #[inline]
    pub fn dinv_block(&self, r: usize) -> &Block4 {
        self.dinv[r * BLOCK_LEN..(r + 1) * BLOCK_LEN]
            .try_into()
            .unwrap()
    }

    /// Bytes touched by one forward+backward solve sweep (for Fig. 7b).
    pub fn sweep_bytes(&self) -> usize {
        self.l.sweep_bytes() + self.u.sweep_bytes() + self.dinv.len() * 8
    }
}

/// Computes the ILU(`fill`) pattern of a matrix: for each row, the sorted
/// block columns retained. `fill = 0` returns A's own pattern.
///
/// Standard level-of-fill recurrence: `lev(i,j) = 0` for original
/// entries, and fill entry levels satisfy
/// `lev(i,j) = min_k lev(i,k) + lev(k,j) + 1`; entries with level ≤ fill
/// are kept.
pub fn symbolic_iluk(a: &Bcsr4, fill: usize) -> Vec<Vec<u32>> {
    let n = a.nrows();
    // Per processed row we keep its upper part (cols > row) with levels,
    // needed by later rows.
    let mut upper: Vec<Vec<(u32, u8)>> = Vec::with_capacity(n);
    let mut pattern: Vec<Vec<u32>> = Vec::with_capacity(n);
    let cap = u8::try_from(fill.min(254)).unwrap();

    // Working row: level per column, epoch-tagged.
    let mut lev = vec![u8::MAX; n];
    let mut stamp = vec![0u32; n];
    let mut epoch = 0u32;

    for i in 0..n {
        epoch += 1;
        // cols of the working row, kept sorted ascending as we go
        let mut cols: Vec<u32> = Vec::with_capacity(a.row_ptr[i + 1] - a.row_ptr[i] + 8);
        for k in a.row_ptr[i]..a.row_ptr[i + 1] {
            let c = a.col_idx[k];
            cols.push(c);
            lev[c as usize] = 0;
            stamp[c as usize] = epoch;
        }
        // Process pivot columns k < i in ascending order, including fill
        // inserted during this row's elimination.
        let mut pos = 0;
        while pos < cols.len() {
            let k = cols[pos];
            pos += 1;
            if k as usize >= i {
                break;
            }
            let lik = lev[k as usize];
            debug_assert!(lik <= cap, "kept entries never exceed the fill cap");
            for &(j, lkj) in &upper[k as usize] {
                let newlev = lik.saturating_add(lkj).saturating_add(1);
                if newlev > cap {
                    continue;
                }
                let ju = j as usize;
                if stamp[ju] == epoch {
                    if newlev < lev[ju] {
                        lev[ju] = newlev;
                    }
                } else {
                    stamp[ju] = epoch;
                    lev[ju] = newlev;
                    // insert keeping `cols[pos..]` sorted; j > k ≥ all
                    // processed columns, so insertion point is ≥ pos.
                    let ins = match cols[pos..].binary_search(&j) {
                        Ok(_) => unreachable!("duplicate column"),
                        Err(e) => pos + e,
                    };
                    cols.insert(ins, j);
                }
            }
        }
        cols.sort_unstable();
        upper.push(
            cols.iter()
                .filter(|&&c| (c as usize) > i)
                .map(|&c| (c, lev[c as usize]))
                .collect(),
        );
        pattern.push(cols);
    }
    pattern
}

/// Numeric block ILU factorization on the given pattern (use
/// [`symbolic_iluk`] or A's own pattern for ILU(0)). Each pattern row must
/// be sorted, contain the diagonal, and include all of A's columns.
pub fn factor(a: &Bcsr4, pattern: &[Vec<u32>], buffer: TempBuffer) -> IluFactors {
    let n = a.nrows();
    assert_eq!(pattern.len(), n);

    // Split pattern into L and U parts up front (they become the outputs).
    let lcols: Vec<Vec<u32>> = pattern
        .iter()
        .enumerate()
        .map(|(i, row)| row.iter().copied().filter(|&c| (c as usize) < i).collect())
        .collect();
    let ucols: Vec<Vec<u32>> = pattern
        .iter()
        .enumerate()
        .map(|(i, row)| row.iter().copied().filter(|&c| (c as usize) > i).collect())
        .collect();
    let mut l = Bcsr4::from_pattern(&lcols);
    let mut u = Bcsr4::from_pattern(&ucols);
    let mut dinv = vec![0.0f64; n * BLOCK_LEN];

    let mut scratch = RowScratch::new(n, buffer);
    for i in 0..n {
        factor_row(a, pattern, &mut l, &mut u, &mut dinv, i, &mut scratch);
    }
    IluFactors { l, u, dinv }
}

/// Working storage for one row's elimination, reusable across rows (and
/// allocated per thread in the parallel factorization).
pub struct RowScratch {
    mode: TempBuffer,
    /// Full mode: one block per matrix column.
    full: Vec<f64>,
    /// Full mode: epoch stamps marking valid columns.
    stamp: Vec<u32>,
    epoch: u32,
    /// Compressed mode: one block per pattern entry of the current row.
    packed: Vec<f64>,
}

impl RowScratch {
    /// Creates scratch for a matrix with `n` block rows.
    pub fn new(n: usize, mode: TempBuffer) -> Self {
        match mode {
            TempBuffer::Full => RowScratch {
                mode,
                full: vec![0.0; n * BLOCK_LEN],
                stamp: vec![0; n],
                epoch: 0,
                packed: Vec::new(),
            },
            TempBuffer::Compressed => RowScratch {
                mode,
                full: Vec::new(),
                stamp: Vec::new(),
                epoch: 0,
                packed: Vec::new(),
            },
        }
    }

    /// Bytes of scratch memory this mode actually touches for a row with
    /// `row_len` pattern entries in a matrix with `n` rows — the working-
    /// set quantity the paper's optimization shrinks.
    pub fn touched_bytes(&self, n: usize, row_len: usize) -> usize {
        match self.mode {
            TempBuffer::Full => n * BLOCK_LEN * 8 + n * 4,
            TempBuffer::Compressed => row_len * BLOCK_LEN * 8,
        }
    }
}

/// Eliminates one row. Exposed (crate-visible via the parallel module) so
/// the level-scheduled and P2P factorization drivers can share it.
pub(crate) fn factor_row(
    a: &Bcsr4,
    pattern: &[Vec<u32>],
    l: &mut Bcsr4,
    u: &mut Bcsr4,
    dinv: &mut [f64],
    i: usize,
    scratch: &mut RowScratch,
) {
    let row = &pattern[i];
    match scratch.mode {
        TempBuffer::Full => {
            scratch.epoch += 1;
            let epoch = scratch.epoch;
            // load A row i (fill entries start at zero)
            for &c in row {
                let cu = c as usize;
                scratch.stamp[cu] = epoch;
                let dst = &mut scratch.full[cu * BLOCK_LEN..(cu + 1) * BLOCK_LEN];
                match a.find(i, c) {
                    Some(k) => dst.copy_from_slice(a.block(k)),
                    None => dst.copy_from_slice(&ZERO_BLOCK),
                }
            }
            // eliminate with pivots k < i (ascending; row is sorted)
            for &k in row.iter().take_while(|&&c| (c as usize) < i) {
                let ku = k as usize;
                // L_ik = w_k * dinv_k
                let wk: Block4 = scratch.full[ku * BLOCK_LEN..(ku + 1) * BLOCK_LEN]
                    .try_into()
                    .unwrap();
                let dk: &Block4 = dinv[ku * BLOCK_LEN..(ku + 1) * BLOCK_LEN]
                    .try_into()
                    .unwrap();
                let lik = block::matmul(&wk, dk);
                scratch.full[ku * BLOCK_LEN..(ku + 1) * BLOCK_LEN].copy_from_slice(&lik);
                // w_j -= L_ik * U_kj for j in U(k) ∩ pattern(i)
                for t in u.row_ptr[ku]..u.row_ptr[ku + 1] {
                    let j = u.col_idx[t] as usize;
                    if scratch.stamp[j] == epoch {
                        let ukj: Block4 = u.blocks[t * BLOCK_LEN..(t + 1) * BLOCK_LEN]
                            .try_into()
                            .unwrap();
                        let wj: &mut Block4 = (&mut scratch.full
                            [j * BLOCK_LEN..(j + 1) * BLOCK_LEN])
                            .try_into()
                            .unwrap();
                        block::matmul_sub_simd(&lik, &ukj, wj);
                    }
                }
            }
            // store L, D^{-1}, U
            store_row_from(
                |c: u32| -> Block4 {
                    scratch.full[c as usize * BLOCK_LEN..(c as usize + 1) * BLOCK_LEN]
                        .try_into()
                        .unwrap()
                },
                row,
                l,
                u,
                dinv,
                i,
            );
        }
        TempBuffer::Compressed => {
            // packed slot s holds block for column row[s]
            let slots = row.len();
            scratch.packed.resize(slots * BLOCK_LEN, 0.0);
            for (s, &c) in row.iter().enumerate() {
                let dst = &mut scratch.packed[s * BLOCK_LEN..(s + 1) * BLOCK_LEN];
                match a.find(i, c) {
                    Some(k) => dst.copy_from_slice(a.block(k)),
                    None => dst.copy_from_slice(&ZERO_BLOCK),
                }
            }
            let diag_pos = row
                .binary_search(&(i as u32))
                .expect("pattern row must contain the diagonal");
            for s in 0..diag_pos {
                let ku = row[s] as usize;
                let wk: Block4 = scratch.packed[s * BLOCK_LEN..(s + 1) * BLOCK_LEN]
                    .try_into()
                    .unwrap();
                let dk: &Block4 = dinv[ku * BLOCK_LEN..(ku + 1) * BLOCK_LEN]
                    .try_into()
                    .unwrap();
                let lik = block::matmul(&wk, dk);
                scratch.packed[s * BLOCK_LEN..(s + 1) * BLOCK_LEN].copy_from_slice(&lik);
                for t in u.row_ptr[ku]..u.row_ptr[ku + 1] {
                    let j = u.col_idx[t];
                    // static mapping: binary search the row pattern
                    if let Ok(sj) = row.binary_search(&j) {
                        let ukj: Block4 = u.blocks[t * BLOCK_LEN..(t + 1) * BLOCK_LEN]
                            .try_into()
                            .unwrap();
                        let wj: &mut Block4 = (&mut scratch.packed
                            [sj * BLOCK_LEN..(sj + 1) * BLOCK_LEN])
                            .try_into()
                            .unwrap();
                        block::matmul_sub_simd(&lik, &ukj, wj);
                    }
                }
            }
            let packed = std::mem::take(&mut scratch.packed);
            store_row_from(
                |c: u32| -> Block4 {
                    let s = row.binary_search(&c).unwrap();
                    packed[s * BLOCK_LEN..(s + 1) * BLOCK_LEN].try_into().unwrap()
                },
                row,
                l,
                u,
                dinv,
                i,
            );
            scratch.packed = packed;
        }
    }
}

fn store_row_from(
    get: impl Fn(u32) -> Block4,
    row: &[u32],
    l: &mut Bcsr4,
    u: &mut Bcsr4,
    dinv: &mut [f64],
    i: usize,
) {
    let mut lk = l.row_ptr[i];
    let mut uk = u.row_ptr[i];
    for &c in row {
        let b = get(c);
        match (c as usize).cmp(&i) {
            std::cmp::Ordering::Less => {
                l.blocks[lk * BLOCK_LEN..(lk + 1) * BLOCK_LEN].copy_from_slice(&b);
                lk += 1;
            }
            std::cmp::Ordering::Equal => {
                let inv = block::invert(&b)
                    .expect("singular pivot block in ILU (matrix not diagonally dominant?)");
                dinv[i * BLOCK_LEN..(i + 1) * BLOCK_LEN].copy_from_slice(&inv);
            }
            std::cmp::Ordering::Greater => {
                u.blocks[uk * BLOCK_LEN..(uk + 1) * BLOCK_LEN].copy_from_slice(&b);
                uk += 1;
            }
        }
    }
    debug_assert_eq!(lk, l.row_ptr[i + 1]);
    debug_assert_eq!(uk, u.row_ptr[i + 1]);
}

/// Convenience: ILU(0) with the compressed buffer.
pub fn ilu0(a: &Bcsr4) -> IluFactors {
    let pattern: Vec<Vec<u32>> = (0..a.nrows())
        .map(|r| a.col_idx[a.row_ptr[r]..a.row_ptr[r + 1]].to_vec())
        .collect();
    factor(a, &pattern, TempBuffer::Compressed)
}

/// Convenience: ILU(k) with the compressed buffer.
pub fn iluk(a: &Bcsr4, fill: usize) -> IluFactors {
    let pattern = symbolic_iluk(a, fill);
    factor(a, &pattern, TempBuffer::Compressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use crate::trsv;

    fn tridiag(n: usize, seed: u64) -> Bcsr4 {
        let edges: Vec<[u32; 2]> = (0..n - 1).map(|i| [i as u32, i as u32 + 1]).collect();
        let mut a = Bcsr4::from_edges(n, &edges);
        a.fill_diag_dominant(seed);
        a
    }

    fn mesh_matrix(seed: u64) -> Bcsr4 {
        let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
        let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(seed);
        a
    }

    #[test]
    fn ilu0_on_tridiagonal_is_exact_lu() {
        // A tridiagonal (block) matrix suffers no fill, so ILU(0) is the
        // exact factorization: solving with it must reproduce x exactly.
        let a = tridiag(6, 11);
        let f = ilu0(&a);
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        let x = trsv::solve(&f, &b);
        for i in 0..n {
            assert!((x[i] - xref[i]).abs() < 1e-8, "i={i}: {} vs {}", x[i], xref[i]);
        }
    }

    #[test]
    fn full_and_compressed_buffers_identical() {
        let a = mesh_matrix(5);
        let pattern: Vec<Vec<u32>> = (0..a.nrows())
            .map(|r| a.col_idx[a.row_ptr[r]..a.row_ptr[r + 1]].to_vec())
            .collect();
        let f1 = factor(&a, &pattern, TempBuffer::Full);
        let f2 = factor(&a, &pattern, TempBuffer::Compressed);
        assert_eq!(f1.l.blocks, f2.l.blocks);
        assert_eq!(f1.u.blocks, f2.u.blocks);
        assert_eq!(f1.dinv, f2.dinv);
    }

    #[test]
    fn symbolic_ilu0_is_a_pattern() {
        let a = mesh_matrix(1);
        let p = symbolic_iluk(&a, 0);
        for r in 0..a.nrows() {
            assert_eq!(
                p[r],
                a.col_idx[a.row_ptr[r]..a.row_ptr[r + 1]].to_vec(),
                "row {r}"
            );
        }
    }

    #[test]
    fn symbolic_fill_grows_with_level() {
        let a = mesh_matrix(1);
        let n0: usize = symbolic_iluk(&a, 0).iter().map(Vec::len).sum();
        let n1: usize = symbolic_iluk(&a, 1).iter().map(Vec::len).sum();
        let n2: usize = symbolic_iluk(&a, 2).iter().map(Vec::len).sum();
        assert!(n1 > n0, "ILU(1) must add fill: {n1} vs {n0}");
        assert!(n2 >= n1);
    }

    #[test]
    fn symbolic_level1_matches_bruteforce() {
        // Brute force: fill(i,j) at level 1 exists iff ∃k < min(i,j) with
        // A(i,k) and A(k,j) nonzero (for a symmetric pattern).
        let a = mesh_matrix(2);
        let n = a.nrows();
        let has = |i: usize, j: u32| a.find(i, j).is_some();
        let p1 = symbolic_iluk(&a, 1);
        for i in 0..n {
            for j in 0..n as u32 {
                let expect = has(i, j)
                    || (0..(i.min(j as usize)))
                        .any(|k| has(i, k as u32) && has(k, j));
                let got = p1[i].binary_search(&j).is_ok();
                assert_eq!(got, expect, "fill({i},{j})");
            }
        }
    }

    #[test]
    fn high_fill_converges_to_exact_lu() {
        // With enough fill ILU(k) becomes complete LU: exact solve.
        let a = mesh_matrix(3);
        let f = iluk(&a, 20);
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        let x = trsv::solve(&f, &b);
        for i in 0..n {
            assert!((x[i] - xref[i]).abs() < 1e-7, "i={i}");
        }
    }

    #[test]
    fn ilu_residual_small_for_dominant_matrix() {
        // ILU(0) as a preconditioner: || I - (LU)^{-1} A || should be
        // well below 1 for a diagonally dominant matrix. Check the action
        // on a few vectors.
        let a = mesh_matrix(4);
        let f = ilu0(&a);
        let n = a.dim();
        for s in 0..3 {
            let x: Vec<f64> = (0..n).map(|i| ((i + s) as f64 * 0.17).sin()).collect();
            let mut ax = vec![0.0; n];
            a.spmv(&x, &mut ax);
            let y = trsv::solve(&f, &ax); // y ≈ x
            let err: f64 = x
                .iter()
                .zip(&y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(err < 0.5 * norm, "preconditioner too weak: {err} vs {norm}");
        }
    }

    #[test]
    fn iluk_on_small_dense_pattern_equals_dense_lu_solve() {
        // 3 fully-coupled block rows: ILU(anything) = LU, so solving with
        // the factors equals the dense solve.
        let mut a = Bcsr4::from_pattern(&[
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2],
        ]);
        a.fill_diag_dominant(9);
        let f = ilu0(&a);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let x1 = trsv::solve(&f, &b);
        let x2 = dense::solve(&a.to_dense(), &b, n);
        for i in 0..n {
            assert!((x1[i] - x2[i]).abs() < 1e-9, "i={i}: {} vs {}", x1[i], x2[i]);
        }
    }
}
