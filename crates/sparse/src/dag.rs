//! The paper's *available parallelism* metric.
//!
//! Section III: "we can measure the parallelism available in a sparse
//! triangular matrix as the ratio of the total number of floating point
//! operations with the cumulative number of floating point operations in
//! the longest dependency path." Table II reports 248× for ILU-0 and 60×
//! for ILU-1 on Mesh-C.

use crate::Bcsr4;

/// Flop counts per 4×4 block operation.
const MATVEC_FLOPS: f64 = 32.0; // 16 mul + 16 add
const MATMUL_FLOPS: f64 = 128.0; // 64 mul + 64 add
const INVERT_FLOPS: f64 = 160.0; // Gauss-Jordan on 4×4, ~2/3·4³·..., rounded

/// DAG statistics for a triangular sweep or a factorization.
#[derive(Clone, Copy, Debug)]
pub struct DagStats {
    /// Total floating-point work.
    pub total_flops: f64,
    /// Work along the longest dependency path.
    pub critical_flops: f64,
    /// Depth of the DAG in rows (= number of levels).
    pub nlevels: usize,
}

impl DagStats {
    /// Available parallelism: `total / critical`.
    pub fn parallelism(&self) -> f64 {
        if self.critical_flops > 0.0 {
            self.total_flops / self.critical_flops
        } else {
            1.0
        }
    }

    /// Computes stats for a generic row DAG where `deps(i)` yields the
    /// rows `i` reads (all `< i`) and `flops(i)` is row `i`'s work.
    pub fn compute<I>(
        n: usize,
        deps: impl Fn(usize) -> I,
        flops: impl Fn(usize) -> f64,
    ) -> DagStats
    where
        I: Iterator<Item = u32>,
    {
        let mut total = 0.0;
        let mut critical = vec![0.0f64; n];
        let mut level = vec![0u32; n];
        let mut max_critical: f64 = 0.0;
        let mut max_level = 0u32;
        for i in 0..n {
            let w = flops(i);
            total += w;
            let mut cp: f64 = 0.0;
            let mut lv = 0u32;
            for d in deps(i) {
                cp = cp.max(critical[d as usize]);
                lv = lv.max(level[d as usize] + 1);
            }
            critical[i] = cp + w;
            level[i] = lv;
            max_critical = max_critical.max(critical[i]);
            max_level = max_level.max(lv);
        }
        DagStats {
            total_flops: total,
            critical_flops: max_critical,
            nlevels: max_level as usize + 1,
        }
    }

    /// Stats for the forward+backward triangular solve of the factors:
    /// row work = one matvec per off-diagonal block + one diagonal apply.
    pub fn for_trsv(l: &Bcsr4, u: &Bcsr4) -> DagStats {
        let fwd = Self::compute(
            l.nrows(),
            |i| l.col_idx[l.row_ptr[i]..l.row_ptr[i + 1]].iter().copied(),
            |i| MATVEC_FLOPS * (l.row_ptr[i + 1] - l.row_ptr[i]) as f64,
        );
        let n = u.nrows();
        let bwd = Self::compute(
            n,
            |i| {
                let orig = n - 1 - i;
                u.col_idx[u.row_ptr[orig]..u.row_ptr[orig + 1]]
                    .iter()
                    .map(move |&c| (n - 1 - c as usize) as u32)
            },
            |i| {
                let orig = n - 1 - i;
                MATVEC_FLOPS * (u.row_ptr[orig + 1] - u.row_ptr[orig]) as f64 + MATVEC_FLOPS
            },
        );
        DagStats {
            total_flops: fwd.total_flops + bwd.total_flops,
            critical_flops: fwd.critical_flops + bwd.critical_flops,
            nlevels: fwd.nlevels + bwd.nlevels,
        }
    }

    /// Stats for the numeric factorization on a given pattern: row work =
    /// per pivot one matmul for `L_ik` plus one matmul per updated entry,
    /// plus one diagonal inversion.
    pub fn for_ilu(pattern: &[Vec<u32>]) -> DagStats {
        // Precompute the upper part sizes for the update count estimate.
        let n = pattern.len();
        let upper_len: Vec<usize> = pattern
            .iter()
            .enumerate()
            .map(|(i, row)| row.iter().filter(|&&c| (c as usize) > i).count())
            .collect();
        Self::compute(
            n,
            |i| {
                pattern[i]
                    .iter()
                    .copied()
                    .filter(move |&c| (c as usize) < i)
            },
            |i| {
                let lower: Vec<u32> = pattern[i]
                    .iter()
                    .copied()
                    .filter(|&c| (c as usize) < i)
                    .collect();
                let updates: usize = lower.iter().map(|&k| upper_len[k as usize]).sum();
                MATMUL_FLOPS * (lower.len() + updates) as f64 + INVERT_FLOPS
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu;

    #[test]
    fn diagonal_dag_has_full_parallelism() {
        // No dependencies: parallelism = n.
        let s = DagStats::compute(10, |_| std::iter::empty::<u32>(), |_| 1.0);
        assert_eq!(s.nlevels, 1);
        assert!((s.parallelism() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn chain_dag_has_no_parallelism() {
        let s = DagStats::compute(
            10,
            |i| (i > 0).then(|| i as u32 - 1).into_iter(),
            |_| 1.0,
        );
        assert_eq!(s.nlevels, 10);
        assert!((s.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_critical_path() {
        // 0 -> 2 and 1 -> 2; flops 5, 1, 1: critical = 5 + 1.
        let deps = |i: usize| -> std::vec::IntoIter<u32> {
            if i == 2 {
                vec![0u32, 1].into_iter()
            } else {
                vec![].into_iter()
            }
        };
        let s = DagStats::compute(3, deps, |i| if i == 0 { 5.0 } else { 1.0 });
        assert!((s.critical_flops - 6.0).abs() < 1e-12);
        assert!((s.total_flops - 7.0).abs() < 1e-12);
    }

    #[test]
    fn ilu1_has_less_parallelism_than_ilu0() {
        // Table II's qualitative claim on a real mesh pattern.
        let m = fun3d_mesh::generator::MeshPreset::Small.build();
        let mut a = crate::Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(3);
        let p0 = ilu::symbolic_iluk(&a, 0);
        let p1 = ilu::symbolic_iluk(&a, 1);
        let f0 = ilu::factor(&a, &p0, ilu::TempBuffer::Compressed);
        let f1 = ilu::factor(&a, &p1, ilu::TempBuffer::Compressed);
        let s0 = DagStats::for_trsv(&f0.l, &f0.u);
        let s1 = DagStats::for_trsv(&f1.l, &f1.u);
        assert!(
            s0.parallelism() > 1.5 * s1.parallelism(),
            "ILU0 parallelism {} vs ILU1 {}",
            s0.parallelism(),
            s1.parallelism()
        );
    }

    #[test]
    fn ilu_dag_parallelism_positive() {
        let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
        let a = crate::Bcsr4::from_edges(m.nvertices(), &m.edges());
        let p = ilu::symbolic_iluk(&a, 0);
        let s = DagStats::for_ilu(&p);
        assert!(s.parallelism() > 1.0);
        assert!(s.total_flops > 0.0);
    }
}
