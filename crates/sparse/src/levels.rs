//! Level scheduling for sparse triangular operations.
//!
//! Rows are grouped into *levels* (wavefronts) of the dependency DAG: a
//! row's level is one more than the maximum level of the rows it reads
//! (Anderson & Saad [24], Naumov [25]). Rows in a level are independent
//! and execute in parallel; a barrier separates consecutive levels. The
//! paper's observed weaknesses — load imbalance because level widths
//! shrink rapidly, and one barrier per level on the critical path — are
//! exactly what [`crate::p2p`] improves on.

use crate::ilu::IluFactors;
use crate::{block, Bcsr4};
use fun3d_threads::{chunk_range, SpinBarrier, TeamSlice, ThreadPool};

/// Rows grouped by DAG level.
#[derive(Clone, Debug)]
pub struct LevelSchedule {
    /// `rows[l]` = rows in level `l`, ascending.
    pub rows: Vec<Vec<u32>>,
}

impl LevelSchedule {
    /// Builds the schedule for the forward solve: row `i` depends on the
    /// columns of `L` row `i`.
    pub fn forward(l: &Bcsr4) -> LevelSchedule {
        Self::from_deps(l.nrows(), |i| {
            l.col_idx[l.row_ptr[i]..l.row_ptr[i + 1]].iter().copied()
        })
    }

    /// Builds the schedule for the backward solve: row `i` depends on the
    /// columns of `U` row `i` (all greater than `i`; levels count from the
    /// last row).
    pub fn backward(u: &Bcsr4) -> LevelSchedule {
        let n = u.nrows();
        // Compute on the reversed index space.
        let sched = Self::from_deps(n, |i| {
            let orig = n - 1 - i;
            u.col_idx[u.row_ptr[orig]..u.row_ptr[orig + 1]]
                .iter()
                .map(move |&c| (n - 1 - c as usize) as u32)
        });
        // Map back to original row ids.
        LevelSchedule {
            rows: sched
                .rows
                .into_iter()
                .map(|lvl| {
                    let mut v: Vec<u32> =
                        lvl.into_iter().map(|r| (n - 1 - r as usize) as u32).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
        }
    }

    fn from_deps<I>(n: usize, deps: impl Fn(usize) -> I) -> LevelSchedule
    where
        I: Iterator<Item = u32>,
    {
        let mut level = vec![0u32; n];
        let mut maxlevel = 0u32;
        for i in 0..n {
            let mut lv = 0u32;
            for d in deps(i) {
                debug_assert!((d as usize) < i, "dependency must precede the row");
                lv = lv.max(level[d as usize] + 1);
            }
            level[i] = lv;
            maxlevel = maxlevel.max(lv);
        }
        let mut rows = vec![Vec::new(); maxlevel as usize + 1];
        for i in 0..n {
            rows[level[i] as usize].push(i as u32);
        }
        LevelSchedule { rows }
    }

    /// Number of levels (barriers = levels − 1 per sweep).
    pub fn nlevels(&self) -> usize {
        self.rows.len()
    }

    /// Total rows scheduled.
    pub fn nrows(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Average rows per level — the parallelism a barrier-per-level
    /// execution can actually use.
    pub fn avg_width(&self) -> f64 {
        self.nrows() as f64 / self.nlevels().max(1) as f64
    }

    /// Maximum level width.
    pub fn max_width(&self) -> usize {
        self.rows.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Forward-solve slice for one member of an already-running SPMD region:
/// a barrier per level, each level's rows chunked statically over the
/// team. `b` and `y` may alias (in-place solve): row `i` reads `b[i]`
/// before writing `y[i]`, and each row is owned by exactly one thread.
pub fn forward_levels_team(
    f: &IluFactors,
    b: TeamSlice,
    y: TeamSlice,
    tid: usize,
    nthreads: usize,
    sched: &LevelSchedule,
    barrier: &SpinBarrier,
) {
    for lvl in &sched.rows {
        let r = chunk_range(lvl.len(), nthreads, tid);
        for &i in &lvl[r] {
            let i = i as usize;
            // SAFETY: row i is owned by this thread; b[i] is not written
            // by anyone during the sweep (if b aliases y, row i's input
            // is read before its output is stored).
            let mut acc: [f64; 4] = unsafe { *(b.as_ptr().add(i * 4) as *const [f64; 4]) };
            for k in f.l.row_ptr[i]..f.l.row_ptr[i + 1] {
                let j = f.l.col_idx[k] as usize;
                // SAFETY: row j is in an earlier level; its write
                // happened before the barrier we crossed.
                let xj: &[f64; 4] = unsafe { &*(y.as_ptr().add(j * 4) as *const [f64; 4]) };
                block::matvec_sub_simd(f.l.block(k), xj, &mut acc);
            }
            // SAFETY: each row is owned by exactly one thread.
            unsafe { std::ptr::copy_nonoverlapping(acc.as_ptr(), y.as_ptr().add(i * 4), 4) };
        }
        barrier.wait();
    }
}

/// Backward-solve slice for one member of an already-running SPMD
/// region. `y` and `x` may alias (in-place solve): row `i`'s input is
/// read before its output is stored, and dependency rows `j > i` hold
/// finished `x` values by the time row `i` runs.
pub fn backward_levels_team(
    f: &IluFactors,
    y: TeamSlice,
    x: TeamSlice,
    tid: usize,
    nthreads: usize,
    sched: &LevelSchedule,
    barrier: &SpinBarrier,
) {
    for lvl in &sched.rows {
        let r = chunk_range(lvl.len(), nthreads, tid);
        for &i in &lvl[r] {
            let i = i as usize;
            // SAFETY: row ownership as in the forward sweep.
            let mut acc: [f64; 4] = unsafe { *(y.as_ptr().add(i * 4) as *const [f64; 4]) };
            for k in f.u.row_ptr[i]..f.u.row_ptr[i + 1] {
                let j = f.u.col_idx[k] as usize;
                // SAFETY: dependency row finished in an earlier level.
                let xj: &[f64; 4] = unsafe { &*(x.as_ptr().add(j * 4) as *const [f64; 4]) };
                block::matvec_sub_simd(f.u.block(k), xj, &mut acc);
            }
            let mut out = [0.0f64; 4];
            block::matvec_acc(f.dinv_block(i), &acc, &mut out);
            // SAFETY: unique row ownership.
            unsafe { std::ptr::copy_nonoverlapping(out.as_ptr(), x.as_ptr().add(i * 4), 4) };
        }
        barrier.wait();
    }
}

/// Parallel forward solve using level scheduling with a barrier per level.
pub fn forward_levels(
    f: &IluFactors,
    b: &[f64],
    y: &mut [f64],
    pool: &ThreadPool,
    sched: &LevelSchedule,
    barrier: &SpinBarrier,
) {
    assert_eq!(barrier.parties(), pool.size());
    let nt = pool.size();
    // The team entry only reads b; the TeamSlice cast discards constness
    // but no write ever goes through it.
    let bp = TeamSlice::from_raw(b.as_ptr() as *mut f64, b.len());
    let yp = TeamSlice::new(y);
    pool.run(|tid| forward_levels_team(f, bp, yp, tid, nt, sched, barrier));
}

/// Parallel backward solve using level scheduling with a barrier per level.
pub fn backward_levels(
    f: &IluFactors,
    y: &[f64],
    x: &mut [f64],
    pool: &ThreadPool,
    sched: &LevelSchedule,
    barrier: &SpinBarrier,
) {
    assert_eq!(barrier.parties(), pool.size());
    let nt = pool.size();
    let yp = TeamSlice::from_raw(y.as_ptr() as *mut f64, y.len());
    let xp = TeamSlice::new(x);
    pool.run(|tid| backward_levels_team(f, yp, xp, tid, nt, sched, barrier));
}

/// Full level-scheduled preconditioner application.
pub fn solve_levels(
    f: &IluFactors,
    b: &[f64],
    pool: &ThreadPool,
    fwd: &LevelSchedule,
    bwd: &LevelSchedule,
) -> Vec<f64> {
    let barrier = SpinBarrier::new(pool.size());
    let mut y = vec![0.0; b.len()];
    forward_levels(f, b, &mut y, pool, fwd, &barrier);
    let mut x = vec![0.0; b.len()];
    backward_levels(f, &y, &mut x, pool, bwd, &barrier);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ilu, trsv};

    fn mesh_factors(seed: u64) -> (Bcsr4, IluFactors) {
        let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
        let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(seed);
        let f = ilu::ilu0(&a);
        (a, f)
    }

    #[test]
    fn forward_schedule_is_topological() {
        let (_, f) = mesh_factors(31);
        let sched = LevelSchedule::forward(&f.l);
        assert_eq!(sched.nrows(), f.nrows());
        // level of each dep must be strictly smaller
        let mut level_of = vec![0usize; f.nrows()];
        for (lv, rows) in sched.rows.iter().enumerate() {
            for &r in rows {
                level_of[r as usize] = lv;
            }
        }
        for i in 0..f.nrows() {
            for k in f.l.row_ptr[i]..f.l.row_ptr[i + 1] {
                let j = f.l.col_idx[k] as usize;
                assert!(level_of[j] < level_of[i]);
            }
        }
    }

    #[test]
    fn backward_schedule_is_topological() {
        let (_, f) = mesh_factors(32);
        let sched = LevelSchedule::backward(&f.u);
        let mut level_of = vec![0usize; f.nrows()];
        for (lv, rows) in sched.rows.iter().enumerate() {
            for &r in rows {
                level_of[r as usize] = lv;
            }
        }
        for i in 0..f.nrows() {
            for k in f.u.row_ptr[i]..f.u.row_ptr[i + 1] {
                let j = f.u.col_idx[k] as usize;
                assert!(level_of[j] < level_of[i], "row {i} dep {j}");
            }
        }
    }

    #[test]
    fn parallel_solve_matches_serial_bitwise_per_row() {
        let (_, f) = mesh_factors(33);
        let n = f.nrows() * 4;
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).sin()).collect();
        let serial = trsv::solve(&f, &b);
        for nt in [1usize, 2, 4] {
            let pool = ThreadPool::new(nt);
            let fwd = LevelSchedule::forward(&f.l);
            let bwd = LevelSchedule::backward(&f.u);
            let par = solve_levels(&f, &b, &pool, &fwd, &bwd);
            // Row-local arithmetic is in identical order => bitwise equal.
            assert_eq!(serial, par, "nt={nt}");
        }
    }

    #[test]
    fn width_statistics() {
        let (_, f) = mesh_factors(34);
        let sched = LevelSchedule::forward(&f.l);
        assert!(sched.nlevels() > 1);
        assert!(sched.max_width() >= sched.avg_width() as usize);
        assert!(sched.avg_width() >= 1.0);
    }

    #[test]
    fn diagonal_matrix_single_level() {
        let mut a = Bcsr4::from_pattern(&[vec![0], vec![1], vec![2]]);
        a.fill_diag_dominant(35);
        let f = ilu::ilu0(&a);
        let sched = LevelSchedule::forward(&f.l);
        assert_eq!(sched.nlevels(), 1);
        assert_eq!(sched.rows[0].len(), 3);
    }
}
