//! Wall-clock timing and named accumulating phase timers.
//!
//! The paper's profiles (Fig. 5, Fig. 8b) break the application into named
//! kernels — flux, gradient, Jacobian assembly, ILU, TRSV, vector
//! primitives, scatter — and report per-kernel times and fractions.
//! [`PhaseTimers`] is the instrument used for that: each kernel start/stop
//! accumulates into a named bucket, and a report lists times, call counts
//! and percentage of the total.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A simple one-shot stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts the timer now.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed time since [`Timer::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Bucket {
    total: Duration,
    calls: u64,
}

/// Named accumulating timers, one bucket per application kernel.
///
/// Buckets are created on first use. The ordering of
/// [`PhaseTimers::entries`] is by descending total time so reports read
/// like a profile.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimers {
    buckets: HashMap<&'static str, Bucket>,
}

/// RAII guard returned by [`PhaseTimers::scope`]; not `Copy` on purpose —
/// dropping it stops the clock.
pub struct PhaseGuard<'a> {
    timers: &'a mut PhaseTimers,
    name: &'static str,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.timers.add(self.name, self.start.elapsed());
    }
}

impl PhaseTimers {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `dur` to the named bucket and bumps its call count.
    pub fn add(&mut self, name: &'static str, dur: Duration) {
        let b = self.buckets.entry(name).or_default();
        b.total += dur;
        b.calls += 1;
    }

    /// Times the closure and accumulates into `name`, passing through its
    /// return value.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.add(name, t.elapsed());
        out
    }

    /// Starts a scope that stops when the returned guard is dropped.
    pub fn scope(&mut self, name: &'static str) -> PhaseGuard<'_> {
        PhaseGuard {
            name,
            start: Instant::now(),
            timers: self,
        }
    }

    /// Total seconds accumulated in `name` (0 if absent).
    pub fn seconds(&self, name: &str) -> f64 {
        self.buckets
            .get(name)
            .map(|b| b.total.as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Call count for `name` (0 if absent).
    pub fn calls(&self, name: &str) -> u64 {
        self.buckets.get(name).map(|b| b.calls).unwrap_or(0)
    }

    /// Sum of all buckets, in seconds. Note this includes envelope
    /// buckets such as `"total"`; use [`PhaseTimers::run_seconds`] as a
    /// percentage denominator.
    pub fn total_seconds(&self) -> f64 {
        self.buckets.values().map(|b| b.total.as_secs_f64()).sum()
    }

    /// Sum of the kernel buckets only, excluding envelope buckets that
    /// wrap the whole run (`"total"`).
    pub fn kernel_seconds(&self) -> f64 {
        self.buckets
            .iter()
            .filter(|(&k, _)| !Self::is_envelope(k))
            .map(|(_, b)| b.total.as_secs_f64())
            .sum()
    }

    /// The wall-clock denominator for percentages: the `"total"` envelope
    /// bucket when one was recorded, otherwise the sum of the kernel
    /// buckets. Using the all-bucket sum would double-count the envelope
    /// and roughly halve every kernel's reported fraction.
    pub fn run_seconds(&self) -> f64 {
        let t = self.seconds("total");
        if t > 0.0 {
            t
        } else {
            self.kernel_seconds()
        }
    }

    /// True for buckets that envelope the whole run rather than time one
    /// kernel.
    pub fn is_envelope(name: &str) -> bool {
        name == "total"
    }

    /// `(name, seconds, calls)` sorted by descending time.
    pub fn entries(&self) -> Vec<(&'static str, f64, u64)> {
        let mut v: Vec<_> = self
            .buckets
            .iter()
            .map(|(&k, b)| (k, b.total.as_secs_f64(), b.calls))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Merges another profile into this one (used to combine per-thread or
    /// per-rank profiles).
    pub fn merge(&mut self, other: &PhaseTimers) {
        for (&k, b) in &other.buckets {
            let mine = self.buckets.entry(k).or_default();
            mine.total += b.total;
            mine.calls += b.calls;
        }
    }

    /// Renders a profile table: name, seconds, % of run, calls. The
    /// percentage denominator is [`PhaseTimers::run_seconds`] so an
    /// envelope `"total"` bucket reads 100% instead of halving every
    /// kernel's fraction.
    pub fn report(&self) -> String {
        self.report_against(self.run_seconds())
    }

    /// Renders the profile table with an explicit percentage denominator
    /// (seconds), for callers whose wall clock lives outside the profile.
    pub fn report_against(&self, denominator_seconds: f64) -> String {
        let total = denominator_seconds.max(1e-300);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>12} {:>7} {:>10}\n",
            "phase", "seconds", "%", "calls"
        ));
        for (name, secs, calls) in self.entries() {
            out.push_str(&format!(
                "{:<24} {:>12.6} {:>6.1}% {:>10}\n",
                name,
                secs,
                100.0 * secs / total,
                calls
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_time_and_calls() {
        let mut p = PhaseTimers::new();
        p.add("flux", Duration::from_millis(30));
        p.add("flux", Duration::from_millis(20));
        p.add("trsv", Duration::from_millis(50));
        assert_eq!(p.calls("flux"), 2);
        assert_eq!(p.calls("trsv"), 1);
        assert!((p.seconds("flux") - 0.05).abs() < 1e-9);
        assert!((p.total_seconds() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut p = PhaseTimers::new();
        let x = p.time("work", || 41 + 1);
        assert_eq!(x, 42);
        assert_eq!(p.calls("work"), 1);
    }

    #[test]
    fn scope_guard_records_on_drop() {
        let mut p = PhaseTimers::new();
        {
            let _g = p.scope("scoped");
            std::hint::black_box(());
        }
        assert_eq!(p.calls("scoped"), 1);
    }

    #[test]
    fn entries_sorted_by_time_desc() {
        let mut p = PhaseTimers::new();
        p.add("a", Duration::from_millis(1));
        p.add("b", Duration::from_millis(3));
        p.add("c", Duration::from_millis(2));
        let names: Vec<_> = p.entries().iter().map(|e| e.0).collect();
        assert_eq!(names, vec!["b", "c", "a"]);
    }

    #[test]
    fn merge_combines_buckets() {
        let mut p = PhaseTimers::new();
        p.add("x", Duration::from_millis(5));
        let mut q = PhaseTimers::new();
        q.add("x", Duration::from_millis(5));
        q.add("y", Duration::from_millis(1));
        p.merge(&q);
        assert_eq!(p.calls("x"), 2);
        assert!((p.seconds("x") - 0.010).abs() < 1e-9);
        assert_eq!(p.calls("y"), 1);
    }

    #[test]
    fn report_contains_all_phases() {
        let mut p = PhaseTimers::new();
        p.add("flux", Duration::from_millis(10));
        p.add("ilu", Duration::from_millis(10));
        let r = p.report();
        assert!(r.contains("flux") && r.contains("ilu"));
    }

    #[test]
    fn envelope_total_bucket_does_not_halve_percentages() {
        let mut p = PhaseTimers::new();
        p.add("flux", Duration::from_millis(60));
        p.add("ilu", Duration::from_millis(40));
        p.add("total", Duration::from_millis(100));
        assert!((p.run_seconds() - 0.100).abs() < 1e-9);
        assert!((p.kernel_seconds() - 0.100).abs() < 1e-9);
        let r = p.report();
        // flux is 60% of the run, not 30% of the double-counted sum
        let flux_line = r.lines().find(|l| l.starts_with("flux")).unwrap();
        assert!(flux_line.contains("60.0%"), "bad line: {flux_line}");
        let total_line = r.lines().find(|l| l.starts_with("total")).unwrap();
        assert!(total_line.contains("100.0%"), "bad line: {total_line}");
    }

    #[test]
    fn run_seconds_without_envelope_is_kernel_sum() {
        let mut p = PhaseTimers::new();
        p.add("flux", Duration::from_millis(30));
        p.add("trsv", Duration::from_millis(70));
        assert!((p.run_seconds() - 0.100).abs() < 1e-9);
        let r = p.report_against(0.200);
        let trsv_line = r.lines().find(|l| l.starts_with("trsv")).unwrap();
        assert!(trsv_line.contains("35.0%"), "bad line: {trsv_line}");
    }
}
