//! Deterministic pseudo-random number generation.
//!
//! Experiments must be reproducible bit-for-bit across runs, so instead of
//! relying on ambient entropy we use an explicit-seed xoshiro256++ generator
//! (public-domain algorithm by Blackman & Vigna) seeded through SplitMix64.
//! This is *not* cryptographic; it is a fast, high-quality generator for
//! mesh jitter, random permutations and synthetic test matrices.

/// SplitMix64 step: used to expand a single `u64` seed into a full
/// xoshiro256++ state, as recommended by the xoshiro authors.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; splitmix cannot produce
        // four zeros from any seed, but keep the guard for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift reduction.
    /// `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// In-place Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds look identical");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng64::new(9);
        let n = 10;
        let mut counts = vec![0usize; n];
        let draws = 100_000;
        for _ in 0..draws {
            counts[r.below(n)] += 1;
        }
        let expected = draws / n;
        for &c in &counts {
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 5) as u64,
                "bucket count {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = Rng64::new(3);
        let p = r.permutation(257);
        let mut seen = vec![false; 257];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng64::new(11);
        for _ in 0..1000 {
            let x = r.range_f64(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }
}
