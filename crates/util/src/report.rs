//! Plain-text tables and CSV files for the experiment harness.
//!
//! Every figure/table binary in `fun3d-bench` prints a [`Table`] to stdout
//! and mirrors it to `target/experiments/<name>.csv` so `EXPERIMENTS.md`
//! can reference stable artifacts.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple column-aligned table with a title.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience for building a row out of `Display` items.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned plain-text form.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for i in 0..ncol {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:>width$}", cells[i], width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV next to other experiment artifacts and returns the
    /// path: `<dir>/<name>.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Default experiment artifact directory (`target/experiments`), relative
/// to the workspace the harness is run from.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

/// Writes a JSON artifact next to the CSVs and returns the path:
/// `<dir>/<name>.json`.
pub fn write_json(
    dir: &Path,
    name: &str,
    doc: &crate::telemetry::json::Json,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, doc.render_pretty())?;
    Ok(path)
}

/// Formats a float with engineering-friendly precision.
pub fn fmt_g(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e5 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "2345".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("alpha"));
        assert!(r.contains("2345"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["x,y".into()]);
        t.row(&["he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("fun3d_util_report_test");
        let path = sample().write_csv(&dir, "demo").unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("name,value"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_json_creates_parsable_file() {
        use crate::telemetry::json::Json;
        let dir = std::env::temp_dir().join("fun3d_util_report_json_test");
        let doc = Json::obj(vec![("kernel", Json::str("flux")), ("gbs", Json::num(20.5))]);
        let path = write_json(&dir, "summary", &doc).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        let back = Json::parse(&content).unwrap();
        assert_eq!(back.get("kernel").and_then(Json::as_str), Some("flux"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_g_ranges() {
        assert_eq!(fmt_g(0.0), "0");
        assert!(fmt_g(1234.5).contains("1234.5"));
        assert!(fmt_g(1.0e7).contains('e'));
        assert!(fmt_g(1.0e-5).contains('e'));
    }

    #[test]
    fn row_display_builds_strings() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row_display(&[1.5, 2.5]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
