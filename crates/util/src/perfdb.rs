//! Append-only performance history with robust change detection.
//!
//! `BENCH_*.json` used to hold exactly one overwritten snapshot, so the
//! repo had no perf trajectory at all. This module gives benchmarks a
//! durable one: each run appends a single compact-JSON line to a
//! `.jsonl` file — commit, date, config, and a flat `metric → value`
//! map — and [`judge`] compares the newest entry against the median/MAD
//! of the previous `K` entries, flagging metrics that moved beyond a
//! robust threshold. The `perf_regress` binary wraps this as a CI gate
//! (`FUN3D_PERF_GATE=off|soft|hard`).
//!
//! Conventions: metrics are **lower-is-better** (seconds per
//! iteration, regions per iteration, wall seconds), except metrics
//! whose name contains `speedup`, which are **higher-is-better**
//! (speedup-vs-threads ratios from the scaling study). The threshold is
//! `max(nmads · 1.4826 · MAD, rel_floor · median)` — the MAD term
//! adapts to each metric's observed noise, the relative floor keeps a
//! zero-MAD baseline (identical snapshots) from flagging microscopic
//! jitter.

use crate::telemetry::json::Json;
use std::io::Write as _;
use std::path::Path;

/// One benchmark snapshot: provenance plus a flat metric map.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfEntry {
    /// Commit the snapshot was taken at (short hash, or `unknown`).
    pub commit: String,
    /// UTC timestamp string (ISO-8601 from the snapshot script).
    pub date: String,
    /// Free-form configuration pairs (mesh, reps, threads, …) that make
    /// entries comparable; judged histories should share a config.
    pub config: Vec<(String, String)>,
    /// Lower-is-better metric values, in insertion order.
    pub metrics: Vec<(String, f64)>,
}

impl PerfEntry {
    /// A metric's value, if present.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The JSON object form of one history line.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("commit", Json::str(self.commit.as_str())),
            ("date", Json::str(self.date.as_str())),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v.as_str())))
                        .collect(),
                ),
            ),
            (
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses one history line's object form.
    pub fn from_json(doc: &Json) -> Result<PerfEntry, String> {
        let commit = doc
            .get("commit")
            .and_then(Json::as_str)
            .ok_or("entry without 'commit'")?
            .to_string();
        let date = doc
            .get("date")
            .and_then(Json::as_str)
            .ok_or("entry without 'date'")?
            .to_string();
        let config = match doc.get("config") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("config '{k}' is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            _ => return Err("'config' is not an object".to_string()),
        };
        let metrics = match doc.get("metrics") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .filter(|x| x.is_finite())
                        .map(|x| (k.clone(), x))
                        .ok_or_else(|| format!("metric '{k}' is not a finite number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("entry without 'metrics' object".to_string()),
        };
        if metrics.is_empty() {
            return Err("entry with empty 'metrics'".to_string());
        }
        Ok(PerfEntry {
            commit,
            date,
            config,
            metrics,
        })
    }
}

/// Appends one entry as a compact JSON line (creates the file and its
/// parent directory as needed).
pub fn append(path: &Path, entry: &PerfEntry) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", entry.to_json().render())
}

/// Loads a history file, oldest entry first. Blank lines are skipped;
/// a malformed line is an error naming its line number (an append-only
/// log that rots silently is worse than none).
pub fn load(path: &Path) -> Result<Vec<PerfEntry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(PerfEntry::from_json(&doc).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Detection parameters.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// Baseline window: the newest entry is judged against up to this
    /// many immediately preceding entries.
    pub window: usize,
    /// MAD multiplier (scaled by 1.4826 to estimate σ under normality).
    pub nmads: f64,
    /// Relative floor: deviations below `rel_floor · |median|` are
    /// never flagged, whatever the MAD says.
    pub rel_floor: f64,
    /// Minimum baseline entries carrying the metric; below this the
    /// metric is reported as unjudged.
    pub min_baseline: usize,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            window: 8,
            nmads: 5.0,
            rel_floor: 0.25,
            min_baseline: 3,
        }
    }
}

/// One metric's judgement.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Metric name.
    pub metric: String,
    /// Newest entry's value.
    pub latest: f64,
    /// Median of the baseline window.
    pub baseline_median: f64,
    /// Raw MAD of the baseline window.
    pub baseline_mad: f64,
    /// `latest / baseline_median` (∞-safe: 0 when the median is 0).
    pub ratio: f64,
    /// Absolute deviation threshold that was applied.
    pub threshold: f64,
    /// Baseline entries that carried the metric.
    pub n_baseline: usize,
    /// Baseline was deep enough to judge at all.
    pub judged: bool,
    /// Moved in the bad direction beyond the threshold (up for
    /// lower-is-better metrics, down for `speedup` metrics).
    pub regressed: bool,
    /// Moved in the good direction beyond the threshold (informational).
    pub improved: bool,
}

/// Metrics named `*speedup*` (ratios), `*gbps*` (effective bandwidth),
/// `*reuse*` (tile edges-per-slot), `*rps*` (service throughput) or
/// `*hit_rate*` (cache effectiveness) are bigger-is-better; every other
/// metric is a cost where smaller is better. Latency quantiles
/// (`*p50*`/`*p99*`/`*latency*`) are explicitly lower-is-better and
/// take precedence, so a key like `warm.rps_p99_ms` judges as latency,
/// not throughput.
pub fn higher_is_better(metric: &str) -> bool {
    if metric.contains("p50") || metric.contains("p99") || metric.contains("latency") {
        return false;
    }
    metric.contains("speedup")
        || metric.contains("gbps")
        || metric.contains("reuse")
        || metric.contains("rps")
        || metric.contains("hit_rate")
}

fn median_of(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Judges the newest entry against the preceding window. Returns one
/// verdict per metric of the newest entry, in its metric order.
/// Histories with fewer than two entries yield an empty list.
pub fn judge(entries: &[PerfEntry], cfg: &GateConfig) -> Vec<Verdict> {
    let Some((latest, past)) = entries.split_last() else {
        return Vec::new();
    };
    if past.is_empty() {
        return Vec::new();
    }
    let window_start = past.len().saturating_sub(cfg.window);
    let window = &past[window_start..];
    latest
        .metrics
        .iter()
        .map(|(name, value)| {
            let mut base: Vec<f64> = window.iter().filter_map(|e| e.metric(name)).collect();
            let n_baseline = base.len();
            if n_baseline < cfg.min_baseline.max(1) {
                return Verdict {
                    metric: name.clone(),
                    latest: *value,
                    baseline_median: f64::NAN,
                    baseline_mad: f64::NAN,
                    ratio: f64::NAN,
                    threshold: f64::NAN,
                    n_baseline,
                    judged: false,
                    regressed: false,
                    improved: false,
                };
            }
            let median = median_of(&mut base);
            let mut devs: Vec<f64> = base.iter().map(|x| (x - median).abs()).collect();
            let mad = median_of(&mut devs);
            let threshold = (cfg.nmads * 1.4826 * mad).max(cfg.rel_floor * median.abs());
            // `delta > 0` means "moved in the bad direction".
            let delta = if higher_is_better(name) {
                median - value
            } else {
                value - median
            };
            Verdict {
                metric: name.clone(),
                latest: *value,
                baseline_median: median,
                baseline_mad: mad,
                ratio: if median != 0.0 { value / median } else { 0.0 },
                threshold,
                n_baseline,
                judged: true,
                regressed: delta > threshold,
                improved: -delta > threshold,
            }
        })
        .collect()
}

/// The gate's enforcement mode, from `FUN3D_PERF_GATE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Skip judging entirely.
    Off,
    /// Judge and report; regressions never fail the process (default).
    Soft,
    /// Judge and report; any regression is a nonzero exit.
    Hard,
}

impl Gate {
    /// Parses a `FUN3D_PERF_GATE` value (unknown strings → `Soft`).
    pub fn parse(s: &str) -> Gate {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Gate::Off,
            "hard" | "fail" | "2" => Gate::Hard,
            _ => Gate::Soft,
        }
    }

    /// The active mode (default [`Gate::Soft`]).
    pub fn from_env() -> Gate {
        std::env::var("FUN3D_PERF_GATE")
            .map(|v| Gate::parse(&v))
            .unwrap_or(Gate::Soft)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(commit: &str, metrics: &[(&str, f64)]) -> PerfEntry {
        PerfEntry {
            commit: commit.to_string(),
            date: "2026-08-06T00:00:00Z".to_string(),
            config: vec![("mesh".to_string(), "tiny".to_string())],
            metrics: metrics
                .iter()
                .map(|(n, v)| (n.to_string(), *v))
                .collect(),
        }
    }

    #[test]
    fn entry_roundtrips_through_json_line() {
        let e = entry("abc1234", &[("team.s_iter@2t", 1.25e-4), ("wall", 0.75)]);
        let line = e.to_json().render();
        assert!(!line.contains('\n'), "history lines must be single-line");
        let back = PerfEntry::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn from_json_rejects_malformed_entries() {
        for bad in [
            r#"{}"#,
            r#"{"commit":"a","date":"d"}"#,
            r#"{"commit":"a","date":"d","metrics":{}}"#,
            r#"{"commit":"a","date":"d","metrics":{"m":"not-a-number"}}"#,
            r#"{"commit":"a","date":"d","config":[1],"metrics":{"m":1}}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(PerfEntry::from_json(&doc).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn append_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("fun3d_perfdb_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("hist.jsonl");
        for i in 0..4 {
            append(&path, &entry(&format!("c{i}"), &[("m", 1.0 + i as f64)])).unwrap();
        }
        let hist = load(&path).unwrap();
        assert_eq!(hist.len(), 4);
        assert_eq!(hist[0].commit, "c0");
        assert_eq!(hist[3].metric("m"), Some(4.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_names_the_bad_line() {
        let dir = std::env::temp_dir().join("fun3d_perfdb_badline");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hist.jsonl");
        std::fs::write(&path, "{\"commit\":\"a\",\"date\":\"d\",\"metrics\":{\"m\":1}}\nnot json\n")
            .unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_3x_slowdown_is_detected() {
        // The acceptance-criterion scenario: a flat-ish history, then a
        // synthetic entry 3× slower. Must regress, and only that metric.
        let mut hist: Vec<PerfEntry> = (0..6)
            .map(|i| {
                entry(
                    &format!("c{i}"),
                    &[
                        ("team.s_iter@2t", 1.0e-4 * (1.0 + 0.02 * (i % 3) as f64)),
                        ("team.regions_per_iter@2t", 1.25),
                    ],
                )
            })
            .collect();
        hist.push(entry(
            "bad",
            &[("team.s_iter@2t", 3.0e-4), ("team.regions_per_iter@2t", 1.25)],
        ));
        let verdicts = judge(&hist, &GateConfig::default());
        let slow = verdicts.iter().find(|v| v.metric == "team.s_iter@2t").unwrap();
        assert!(slow.judged && slow.regressed, "{slow:?}");
        assert!(slow.ratio > 2.5);
        let flat = verdicts
            .iter()
            .find(|v| v.metric == "team.regions_per_iter@2t")
            .unwrap();
        assert!(flat.judged && !flat.regressed && !flat.improved);
    }

    #[test]
    fn noisy_flat_history_does_not_false_positive() {
        // ±10% jitter around a constant: inside the default 25% floor.
        let vals = [1.0, 1.1, 0.9, 1.05, 0.95, 1.08, 0.92, 1.02];
        let hist: Vec<PerfEntry> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| entry(&format!("c{i}"), &[("m", *v)]))
            .collect();
        let verdicts = judge(&hist, &GateConfig::default());
        assert!(!verdicts[0].regressed && !verdicts[0].improved, "{:?}", verdicts[0]);
    }

    #[test]
    fn improvement_is_reported_not_regressed() {
        let mut hist: Vec<PerfEntry> = (0..5)
            .map(|i| entry(&format!("c{i}"), &[("m", 1.0)]))
            .collect();
        hist.push(entry("fast", &[("m", 0.4)]));
        let v = &judge(&hist, &GateConfig::default())[0];
        assert!(v.improved && !v.regressed);
    }

    #[test]
    fn short_history_is_unjudged_not_flagged() {
        let hist = vec![entry("a", &[("m", 1.0)]), entry("b", &[("m", 99.0)])];
        let v = &judge(&hist, &GateConfig::default())[0];
        assert!(!v.judged && !v.regressed);
        assert_eq!(v.n_baseline, 1);
        assert!(judge(&hist[..1], &GateConfig::default()).is_empty());
        assert!(judge(&[], &GateConfig::default()).is_empty());
    }

    #[test]
    fn window_limits_the_baseline() {
        // Old slow era outside the window must not mask a regression
        // against the recent fast era.
        let mut hist: Vec<PerfEntry> = (0..10)
            .map(|i| entry(&format!("old{i}"), &[("m", 10.0)]))
            .collect();
        hist.extend((0..8).map(|i| entry(&format!("new{i}"), &[("m", 1.0)])));
        hist.push(entry("bad", &[("m", 3.0)]));
        let cfg = GateConfig {
            window: 8,
            ..GateConfig::default()
        };
        let v = &judge(&hist, &cfg)[0];
        assert!((v.baseline_median - 1.0).abs() < 1e-12);
        assert!(v.regressed);
    }

    #[test]
    fn metric_missing_from_baseline_is_unjudged() {
        let mut hist: Vec<PerfEntry> = (0..5)
            .map(|i| entry(&format!("c{i}"), &[("m", 1.0)]))
            .collect();
        hist.push(entry("new", &[("m", 1.0), ("brand_new_metric", 7.0)]));
        let verdicts = judge(&hist, &GateConfig::default());
        let v = verdicts
            .iter()
            .find(|v| v.metric == "brand_new_metric")
            .unwrap();
        assert!(!v.judged && v.n_baseline == 0);
    }

    #[test]
    fn speedup_metrics_are_higher_is_better() {
        // A speedup falling from 1.5x to 0.6x is a regression even
        // though the value went DOWN; rising to 3x is an improvement.
        let base: Vec<PerfEntry> = (0..5)
            .map(|i| entry(&format!("c{i}"), &[("large.speedup_nt4_vs_nt1", 1.5)]))
            .collect();
        let mut worse = base.clone();
        worse.push(entry("bad", &[("large.speedup_nt4_vs_nt1", 0.6)]));
        let v = &judge(&worse, &GateConfig::default())[0];
        assert!(v.regressed && !v.improved, "{v:?}");
        let mut better = base.clone();
        better.push(entry("good", &[("large.speedup_nt4_vs_nt1", 3.0)]));
        let v = &judge(&better, &GateConfig::default())[0];
        assert!(v.improved && !v.regressed, "{v:?}");
        // Cost metrics keep the original orientation.
        let costs: Vec<PerfEntry> = (0..5)
            .map(|i| entry(&format!("c{i}"), &[("team.s_iter@2t", 1.0)]))
            .collect();
        let mut slow = costs.clone();
        slow.push(entry("bad", &[("team.s_iter@2t", 3.0)]));
        let v = &judge(&slow, &GateConfig::default())[0];
        assert!(v.regressed && !v.improved, "{v:?}");
    }

    #[test]
    fn bandwidth_metrics_are_higher_is_better() {
        // Effective-GB/s metrics (the tiled_flux artifact) regress when
        // they FALL: a kernel losing bandwidth got slower.
        assert!(higher_is_better("large.flux_tiled.gbps@4t"));
        assert!(higher_is_better("medium.tile_reuse"));
        assert!(!higher_is_better("medium.flux_tiled.s_iter@4t"));
        let base: Vec<PerfEntry> = (0..5)
            .map(|i| entry(&format!("c{i}"), &[("large.flux_tiled.gbps@4t", 10.0)]))
            .collect();
        let mut worse = base.clone();
        worse.push(entry("bad", &[("large.flux_tiled.gbps@4t", 5.0)]));
        let v = &judge(&worse, &GateConfig::default())[0];
        assert!(v.regressed && !v.improved, "{v:?}");
    }

    #[test]
    fn gate_parse() {
        assert_eq!(Gate::parse("off"), Gate::Off);
        assert_eq!(Gate::parse("HARD"), Gate::Hard);
        assert_eq!(Gate::parse("soft"), Gate::Soft);
        assert_eq!(Gate::parse("bogus"), Gate::Soft);
    }
}
