//! A minimal, std-only micro-benchmark runner.
//!
//! Replaces the external `criterion` crate for the workspace's
//! `harness = false` bench targets. The measurement model is the standard
//! one: a calibration run sizes the number of iterations per sample so
//! each sample lasts at least a minimum wall time, a warmup phase runs
//! the routine until caches/branch predictors settle, and then a fixed
//! number of samples is timed. Robust statistics — the **median**
//! per-iteration time and the **MAD** (median absolute deviation) — are
//! reported, since micro-benchmarks on a shared host see one-sided noise
//! that poisons means and standard deviations.
//!
//! Results print to stdout as they complete and are mirrored to
//! `target/experiments/microbench.csv` through [`crate::report::Table`]
//! when [`Bench::finish`] runs, so `EXPERIMENTS.md` can cite stable
//! artifacts.
//!
//! The public API intentionally mirrors the small slice of criterion the
//! benches used (`group` / `sample_size` / `bench_function` /
//! `iter` / `iter_batched_ref`), so porting a bench is mechanical.

use crate::report::{experiments_dir, fmt_g, Table};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Hint for how setup cost relates to routine cost in
/// [`Bencher::iter_batched_ref`]. All variants currently measure the
/// routine per-call with setup excluded; the hint is kept for API
/// compatibility with ported benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Sampling parameters. Defaults are sized for a one-core container:
/// quick, but enough samples for a stable median.
#[derive(Clone, Copy, Debug)]
pub struct SampleConfig {
    /// Wall time spent running the routine before sampling starts.
    pub warmup: Duration,
    /// Minimum wall time of one sample; iterations per sample are
    /// calibrated so a sample lasts at least this long.
    pub min_sample_time: Duration,
    /// Number of samples per benchmark.
    pub sample_size: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            warmup: Duration::from_millis(20),
            min_sample_time: Duration::from_millis(5),
            sample_size: 20,
        }
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Record {
    /// `group/function` id.
    pub id: String,
    /// Median per-iteration seconds.
    pub median_s: f64,
    /// Median absolute deviation of the per-iteration sample, seconds.
    pub mad_s: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
}

/// Median of a non-empty sample.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Median absolute deviation: `median(|x_i - median(x)|)`. A robust
/// spread estimate — unlike the standard deviation, a few slow outlier
/// samples (scheduler preemption, page cache misses) barely move it.
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.2} ns", s * 1e9)
    }
}

/// The top-level runner: owns the filter, default sampling config and
/// accumulated results.
pub struct Bench {
    filter: Option<String>,
    default_cfg: SampleConfig,
    records: Vec<Record>,
    csv_name: String,
}

impl Bench {
    /// Runner with default config and no filter.
    pub fn new() -> Bench {
        Bench {
            filter: None,
            default_cfg: SampleConfig::default(),
            records: Vec::new(),
            csv_name: "microbench".to_string(),
        }
    }

    /// Runner configured from the process arguments, as cargo invokes a
    /// `harness = false` bench: flags (e.g. the `--bench` cargo appends)
    /// are ignored and the first positional argument is a substring
    /// filter on `group/function` ids — `cargo bench -p fun3d-bench -- flux`.
    pub fn from_args() -> Bench {
        let mut b = Bench::new();
        b.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        b
    }

    /// Overrides the default sampling config (tests use tiny budgets).
    pub fn with_config(cfg: SampleConfig) -> Bench {
        let mut b = Bench::new();
        b.default_cfg = cfg;
        b
    }

    /// Starts a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        let cfg = self.default_cfg;
        Group {
            bench: self,
            name: name.to_string(),
            cfg,
        }
    }

    /// Results recorded so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Prints a footer, writes the CSV artifact and returns the records.
    pub fn finish(self) -> Vec<Record> {
        if self.records.is_empty() {
            match &self.filter {
                Some(f) => println!("microbench: no benchmark matched filter {f:?}"),
                None => println!("microbench: nothing ran"),
            }
            return self.records;
        }
        let mut t = Table::new(
            "microbench",
            &["benchmark", "median_s", "mad_s", "samples", "iters_per_sample"],
        );
        for r in &self.records {
            t.row(&[
                r.id.clone(),
                fmt_g(r.median_s),
                fmt_g(r.mad_s),
                r.samples.to_string(),
                r.iters_per_sample.to_string(),
            ]);
        }
        match t.write_csv(&experiments_dir(), &self.csv_name) {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\nmicrobench: could not write CSV: {e}"),
        }
        self.records
    }
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

/// A group of related benchmarks sharing a sampling config.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    cfg: SampleConfig,
}

impl Group<'_> {
    /// Sets the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least 2 samples");
        self.cfg.sample_size = n;
        self
    }

    /// Sets the minimum wall time of one sample.
    pub fn min_sample_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.min_sample_time = d;
        self
    }

    /// Sets the warmup time.
    pub fn warmup(&mut self, d: Duration) -> &mut Self {
        self.cfg.warmup = d;
        self
    }

    /// Measures one function. `f` receives a [`Bencher`] and must call
    /// one of its `iter*` methods exactly once.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(filt) = &self.bench.filter {
            if !full.contains(filt.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            cfg: self.cfg,
            samples: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut b);
        assert!(
            !b.samples.is_empty(),
            "benchmark '{full}' never called Bencher::iter*"
        );
        let med = median(&b.samples);
        let spread = mad(&b.samples);
        println!(
            "{full:<44} median {:>12}   mad {:>12} ({} samples x {} iters)",
            fmt_time(med),
            fmt_time(spread),
            b.samples.len(),
            b.iters_per_sample
        );
        self.bench.records.push(Record {
            id: full,
            median_s: med,
            mad_s: spread,
            samples: b.samples.len(),
            iters_per_sample: b.iters_per_sample,
        });
        self
    }

    /// Ends the group (API-compatibility no-op; results are recorded as
    /// each function finishes).
    pub fn finish(self) {}
}

/// Handed to the measured closure; collects per-iteration timings.
pub struct Bencher {
    cfg: SampleConfig,
    /// Per-iteration seconds, one entry per sample.
    samples: Vec<f64>,
    iters_per_sample: u64,
}

fn calibrate_iters(once: Duration, min_sample: Duration) -> u64 {
    if once.is_zero() {
        // Faster than the clock resolution: pick a large batch.
        return 1 << 16;
    }
    let n = (min_sample.as_secs_f64() / once.as_secs_f64()).ceil();
    (n as u64).clamp(1, 1 << 24)
}

impl Bencher {
    /// Times `f` back-to-back; each sample is `iters` calls timed as one
    /// block, so per-iteration clock overhead vanishes.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let iters = calibrate_iters(once, self.cfg.min_sample_time);
        let wu = Instant::now();
        while wu.elapsed() < self.cfg.warmup {
            black_box(f());
        }
        for _ in 0..self.cfg.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        self.iters_per_sample = iters;
    }

    /// Times `routine` with a fresh `setup()` value per call; setup time
    /// is excluded from the measurement. Use when the routine consumes or
    /// mutates its input (e.g. accumulating into a residual buffer).
    pub fn iter_batched_ref<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> R,
        _size: BatchSize,
    ) {
        let mut s0 = setup();
        let t0 = Instant::now();
        black_box(routine(&mut s0));
        let once = t0.elapsed();
        let iters = calibrate_iters(once, self.cfg.min_sample_time);
        let wu = Instant::now();
        while wu.elapsed() < self.cfg.warmup {
            let mut s = setup();
            black_box(routine(&mut s));
        }
        for _ in 0..self.cfg.sample_size {
            let mut busy = Duration::ZERO;
            for _ in 0..iters {
                let mut s = setup();
                let t = Instant::now();
                black_box(routine(&mut s));
                busy += t.elapsed();
            }
            self.samples.push(busy.as_secs_f64() / iters as f64);
        }
        self.iters_per_sample = iters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn mad_on_known_distribution() {
        // median 3; |dev| = [2, 1, 0, 1, 97] -> median 1. The 100.0
        // outlier moves the mean to 22 and stddev to ~43.6 but leaves
        // the MAD at 1 — exactly why the runner reports MAD.
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(median(&xs), 3.0);
        assert_eq!(mad(&xs), 1.0);
    }

    #[test]
    fn mad_of_constant_sample_is_zero() {
        assert_eq!(mad(&[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn mad_even_length() {
        // median 2.5; |dev| = [1.5, 0.5, 0.5, 1.5] -> median 1.0
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "median of empty sample")]
    fn median_empty_panics() {
        median(&[]);
    }

    fn tiny_cfg() -> SampleConfig {
        SampleConfig {
            warmup: Duration::ZERO,
            min_sample_time: Duration::from_micros(50),
            sample_size: 5,
        }
    }

    #[test]
    fn iter_records_positive_median() {
        let mut bench = Bench::with_config(tiny_cfg());
        let mut g = bench.group("t");
        g.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>())
        });
        g.finish();
        let recs = bench.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "t/sum");
        assert!(recs[0].median_s > 0.0);
        assert!(recs[0].mad_s >= 0.0);
        assert_eq!(recs[0].samples, 5);
        assert!(recs[0].iters_per_sample >= 1);
    }

    #[test]
    fn iter_batched_ref_excludes_setup() {
        let mut bench = Bench::with_config(tiny_cfg());
        let mut g = bench.group("t");
        g.bench_function("fill", |b| {
            b.iter_batched_ref(
                || vec![0.0f64; 256],
                |v| v.iter_mut().for_each(|x| *x += 1.0),
                BatchSize::LargeInput,
            )
        });
        g.finish();
        assert_eq!(bench.records().len(), 1);
        assert!(bench.records()[0].median_s > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut bench = Bench::with_config(tiny_cfg());
        bench.filter = Some("flux".to_string());
        let mut g = bench.group("spmv");
        g.bench_function("bcsr", |b| b.iter(|| 1 + 1));
        g.finish();
        assert!(bench.records().is_empty());
    }

    #[test]
    fn calibration_bounds() {
        assert_eq!(calibrate_iters(Duration::ZERO, Duration::from_millis(5)), 1 << 16);
        assert_eq!(
            calibrate_iters(Duration::from_secs(1), Duration::from_millis(5)),
            1
        );
        let n = calibrate_iters(Duration::from_micros(10), Duration::from_millis(5));
        assert_eq!(n, 500);
    }
}
