//! A minimal, std-only property-testing harness.
//!
//! Replaces the external `proptest` crate so the workspace builds with an
//! empty cargo registry. The model is deliberately simple: each test case
//! gets a 64-bit seed; the test body draws its inputs imperatively from a
//! [`Gen`] (backed by the workspace's deterministic [`Rng64`]); every draw
//! is recorded so that a failing case can be *shrunk* by halving numeric
//! inputs toward their lower bounds and re-running with the smaller
//! values. A failure report always includes the original case seed, which
//! reproduces the un-shrunk failure deterministically:
//!
//! ```text
//! FUN3D_PROP_SEED=0x0123456789abcdef cargo test -- my_property
//! ```
//!
//! Assertions inside a property use [`prop_assert!`] /
//! [`prop_assert_eq!`] (early-`return Err(..)`, like proptest's), and
//! panics from library code under test are caught and treated as
//! failures too. Properties are declared with the [`prop_cases!`] macro:
//!
//! ```
//! use fun3d_util::{prop_cases, prop_assert};
//!
//! prop_cases! {
//!     fn addition_commutes(g, cases = 8) {
//!         let a = g.f64_range(-1.0, 1.0);
//!         let b = g.f64_range(-1.0, 1.0);
//!         prop_assert!(a + b == b + a, "{a} + {b}");
//!     }
//! }
//! ```
//!
//! [`prop_assert!`]: crate::prop_assert
//! [`prop_assert_eq!`]: crate::prop_assert_eq
//! [`prop_cases!`]: crate::prop_cases

use crate::rng::Rng64;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One recorded input drawn by a property body. Ranges are kept so the
/// shrinker knows each value's lower bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Draw {
    /// An unconstrained `u64` (shrinks toward 0).
    U64 { val: u64 },
    /// A `f64` uniform in `[lo, hi)` (shrinks toward `lo`).
    F64 { val: f64, lo: f64, hi: f64 },
    /// A `usize` uniform in `[lo, hi)` (shrinks toward `lo`).
    Usize { val: usize, lo: usize, hi: usize },
}

impl Draw {
    /// Shrink candidates, most aggressive first. Empty when the value is
    /// already at its lower bound.
    fn shrink_candidates(&self) -> Vec<Draw> {
        match *self {
            Draw::U64 { val } => {
                let mut c = Vec::new();
                if val != 0 {
                    c.push(Draw::U64 { val: 0 });
                    if val / 2 != 0 {
                        c.push(Draw::U64 { val: val / 2 });
                    }
                }
                c
            }
            Draw::F64 { val, lo, hi } => {
                let mut c = Vec::new();
                if val > lo {
                    c.push(Draw::F64 { val: lo, lo, hi });
                    let half = lo + (val - lo) * 0.5;
                    if half != val && half > lo {
                        c.push(Draw::F64 { val: half, lo, hi });
                    }
                }
                c
            }
            Draw::Usize { val, lo, hi } => {
                let mut c = Vec::new();
                if val > lo {
                    c.push(Draw::Usize { val: lo, lo, hi });
                    let half = lo + (val - lo) / 2;
                    if half != val && half > lo {
                        c.push(Draw::Usize { val: half, lo, hi });
                    }
                }
                c
            }
        }
    }
}

impl std::fmt::Display for Draw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Draw::U64 { val } => write!(f, "u64 = {val} ({val:#x})"),
            Draw::F64 { val, lo, hi } => write!(f, "f64[{lo}, {hi}) = {val}"),
            Draw::Usize { val, lo, hi } => write!(f, "usize[{lo}, {hi}) = {val}"),
        }
    }
}

/// The input source handed to a property body. Draws are deterministic in
/// the case seed; during shrinking, recorded values are replayed with
/// selected lanes overridden by smaller candidates.
pub struct Gen {
    rng: Rng64,
    seed: u64,
    draws: Vec<Draw>,
    overrides: Vec<Draw>,
}

impl Gen {
    /// Fresh generator for one case.
    pub fn from_seed(seed: u64) -> Gen {
        Gen::with_overrides(seed, Vec::new())
    }

    fn with_overrides(seed: u64, overrides: Vec<Draw>) -> Gen {
        Gen {
            rng: Rng64::new(seed),
            seed,
            draws: Vec::new(),
            overrides,
        }
    }

    /// The case seed (printed in failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An unconstrained `u64`.
    pub fn u64(&mut self) -> u64 {
        // Always advance the RNG so draws past the override prefix see the
        // same stream as the original (un-shrunk) run.
        let fresh = self.rng.next_u64();
        let idx = self.draws.len();
        let val = match self.overrides.get(idx) {
            Some(Draw::U64 { val }) => *val,
            _ => fresh,
        };
        self.draws.push(Draw::U64 { val });
        val
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty f64 range [{lo}, {hi})");
        let fresh = lo + (hi - lo) * self.rng.next_f64();
        let idx = self.draws.len();
        let val = match self.overrides.get(idx) {
            // Use the override only if it still fits this call's range —
            // shrunk values can change control flow and thus draw shapes.
            Some(Draw::F64 { val, .. }) if *val >= lo && *val < hi => *val,
            _ => fresh,
        };
        self.draws.push(Draw::F64 { val, lo, hi });
        val
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range [{lo}, {hi})");
        let fresh = lo + self.rng.below(hi - lo);
        let idx = self.draws.len();
        let val = match self.overrides.get(idx) {
            Some(Draw::Usize { val, .. }) if *val >= lo && *val < hi => *val,
            _ => fresh,
        };
        self.draws.push(Draw::Usize { val, lo, hi });
        val
    }

    /// A `bool` with probability 1/2.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }
}

/// A failed case: what was drawn and why it failed.
#[derive(Clone, Debug)]
struct Failure {
    draws: Vec<Draw>,
    message: String,
}

/// Runs the body once with `overrides` replayed over the seed's stream.
/// Returns `Some(Failure)` if the body returned `Err` or panicked.
fn run_with<F>(seed: u64, f: &F, overrides: &[Draw]) -> Option<Failure>
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    let mut gen = Gen::with_overrides(seed, overrides.to_vec());
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut gen)));
    let message = match outcome {
        Ok(Ok(())) => return None,
        Ok(Err(msg)) => msg,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            format!("panicked: {msg}")
        }
    };
    Some(Failure {
        draws: gen.draws,
        message,
    })
}

/// Maximum number of candidate re-runs spent shrinking one failure.
const SHRINK_BUDGET: usize = 128;

/// Greedy shrink: repeatedly try to halve each recorded draw toward its
/// lower bound, keeping any candidate that still fails.
fn shrink<F>(seed: u64, f: &F, original: Failure) -> Failure
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    let mut current = original;
    let mut budget = SHRINK_BUDGET;
    loop {
        let mut improved = false;
        for lane in 0..current.draws.len() {
            for candidate in current.draws[lane].shrink_candidates() {
                if budget == 0 {
                    return current;
                }
                budget -= 1;
                let mut trial = current.draws.clone();
                trial[lane] = candidate;
                if let Some(fail) = run_with(seed, f, &trial) {
                    current = fail;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return current;
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u64>().ok()
    }
}

/// FNV-1a, used to derive a per-property base seed from its name so
/// different properties exercise different streams.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn report(name: &str, seed: u64, case: Option<usize>, cases: usize, fail: &Failure) -> String {
    let mut out = String::new();
    match case {
        Some(i) => out.push_str(&format!(
            "property '{name}' failed at case {}/{cases}\n",
            i + 1
        )),
        None => out.push_str(&format!("property '{name}' failed on replayed seed\n")),
    }
    out.push_str(&format!("  seed: {seed:#018x}\n"));
    out.push_str("  minimal failing inputs (after shrinking):\n");
    for d in &fail.draws {
        out.push_str(&format!("    {d}\n"));
    }
    out.push_str(&format!("  error: {}\n", fail.message));
    out.push_str(&format!(
        "  replay: FUN3D_PROP_SEED={seed:#018x} cargo test -- {name}"
    ));
    out
}

/// Runs `cases` seeded cases of property `f`, shrinking and panicking with
/// a reproducible report on the first failure.
///
/// Setting `FUN3D_PROP_SEED` replays exactly that seed (for every
/// property in the run — combine with a test-name filter).
pub fn check<F>(name: &str, cases: usize, f: F)
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    if let Ok(v) = std::env::var("FUN3D_PROP_SEED") {
        let seed =
            parse_seed(&v).unwrap_or_else(|| panic!("unparseable FUN3D_PROP_SEED: {v:?}"));
        match run_with(seed, &f, &[]) {
            Some(fail) => panic!("{}", report(name, seed, None, cases, &fail)),
            None => {
                eprintln!("property '{name}': replayed seed {seed:#018x} passed");
                return;
            }
        }
    }
    let mut seeder = Rng64::new(fnv1a(name));
    for case in 0..cases {
        let seed = seeder.next_u64();
        if let Some(fail) = run_with(seed, &f, &[]) {
            let minimal = shrink(seed, &f, fail);
            panic!("{}", report(name, seed, Some(case), cases, &minimal));
        }
    }
}

/// Truncated `Debug` formatting so assertion messages on large vectors
/// stay readable.
pub fn debug_short<T: std::fmt::Debug>(x: &T) -> String {
    const MAX: usize = 320;
    let s = format!("{x:?}");
    if s.len() <= MAX {
        s
    } else {
        let cut = s
            .char_indices()
            .take_while(|(i, _)| *i < MAX)
            .last()
            .map(|(i, c)| i + c.len_utf8())
            .unwrap_or(0);
        format!("{}… ({} chars)", &s[..cut], s.len())
    }
}

/// Declares `#[test]` property functions. Each body runs `cases` times
/// with fresh seeded inputs drawn from the named [`Gen`] binding; use
/// [`prop_assert!`]-family macros inside the body.
///
/// [`prop_assert!`]: crate::prop_assert
#[macro_export]
macro_rules! prop_cases {
    ($($(#[$attr:meta])* fn $name:ident($g:ident, cases = $cases:expr) $body:block)+) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                $crate::proptest_mini::check(
                    stringify!($name),
                    $cases,
                    |$g: &mut $crate::proptest_mini::Gen| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// `assert!` for property bodies: fails the case with `Err` (so the
/// shrinker can re-run it) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return Err(format!(
                "assertion failed: `left == right` ({}:{})\n  left: {}\n right: {}",
                file!(),
                line!(),
                $crate::proptest_mini::debug_short(lhs),
                $crate::proptest_mini::debug_short(rhs)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return Err(format!(
                "{}\n  left: {}\n right: {}",
                format!($($fmt)+),
                $crate::proptest_mini::debug_short(lhs),
                $crate::proptest_mini::debug_short(rhs)
            ));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return Err(format!(
                "assertion failed: `left != right` ({}:{})\n  both: {}",
                file!(),
                line!(),
                $crate::proptest_mini::debug_short(lhs)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_draws() {
        let draw_all = |g: &mut Gen| {
            (
                g.u64(),
                g.f64_range(-3.0, 9.0),
                g.usize_range(2, 40),
                g.bool(),
            )
        };
        let mut a = Gen::from_seed(0xDEADBEEF);
        let mut b = Gen::from_seed(0xDEADBEEF);
        for _ in 0..100 {
            assert_eq!(draw_all(&mut a), draw_all(&mut b));
        }
    }

    #[test]
    fn draws_respect_ranges() {
        let mut g = Gen::from_seed(7);
        for _ in 0..1000 {
            let x = g.f64_range(1.5, 2.5);
            assert!((1.5..2.5).contains(&x));
            let n = g.usize_range(3, 17);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0usize;
        let counter = std::cell::Cell::new(0usize);
        check("always_passes", 25, |g| {
            let _ = g.u64();
            counter.set(counter.get() + 1);
            Ok(())
        });
        ran += counter.get();
        assert_eq!(ran, 25);
    }

    #[test]
    fn shrink_halves_toward_boundary() {
        // Fails iff x >= 17: the halving shrinker must land in [17, 34]
        // (one halving below 17 would pass, so it can't overshoot by 2x).
        let prop = |g: &mut Gen| {
            let x = g.usize_range(0, 1_000_000);
            if x >= 17 {
                Err(format!("too big: {x}"))
            } else {
                Ok(())
            }
        };
        // find a failing seed (virtually every one is)
        let mut seeder = Rng64::new(99);
        let seed = loop {
            let s = seeder.next_u64();
            if run_with(s, &prop, &[]).is_some() {
                break s;
            }
        };
        let original = run_with(seed, &prop, &[]).unwrap();
        let minimal = shrink(seed, &prop, original);
        match minimal.draws[0] {
            Draw::Usize { val, .. } => {
                assert!((17..=34).contains(&val), "shrunk to {val}, not near 17")
            }
            ref d => panic!("unexpected draw {d:?}"),
        }
    }

    #[test]
    fn shrink_reaches_lower_bound_when_everything_fails() {
        let prop = |g: &mut Gen| {
            let x = g.f64_range(2.0, 8.0);
            let n = g.u64();
            Err(format!("always fails: {x} {n}"))
        };
        let original = run_with(42, &prop, &[]).unwrap();
        let minimal = shrink(42, &prop, original);
        assert_eq!(minimal.draws[0], Draw::F64 { val: 2.0, lo: 2.0, hi: 8.0 });
        assert_eq!(minimal.draws[1], Draw::U64 { val: 0 });
    }

    #[test]
    fn failure_report_contains_replayable_seed() {
        let prop = |g: &mut Gen| {
            let x = g.u64();
            if x % 2 == 0 {
                Err("even".to_string())
            } else {
                Ok(())
            }
        };
        let msg = catch_unwind(AssertUnwindSafe(|| check("sometimes_even", 64, &prop)))
            .expect_err("property must fail within 64 cases");
        let msg = msg.downcast_ref::<String>().expect("string panic").clone();
        assert!(msg.contains("FUN3D_PROP_SEED="), "no replay line in:\n{msg}");
        // extract the hex seed and confirm it reproduces the failure
        let tail = msg.split("seed: ").nth(1).unwrap();
        let hex = tail.split_whitespace().next().unwrap();
        let seed = parse_seed(hex).expect("parsable seed");
        assert!(
            run_with(seed, &prop, &[]).is_some(),
            "reported seed {seed:#x} does not reproduce"
        );
    }

    #[test]
    fn panicking_body_is_caught_and_shrunk() {
        let prop = |g: &mut Gen| {
            let n = g.usize_range(0, 100);
            assert!(n < 5, "boom at {n}"); // real panic, not prop_assert
            Ok(())
        };
        let fail = run_with(3, &prop, &[]);
        // nearly every seed draws n >= 5; if this one passed, force one that fails
        let fail = fail.or_else(|| run_with(4, &prop, &[])).or_else(|| {
            let mut s = Rng64::new(1);
            loop {
                if let Some(f) = run_with(s.next_u64(), &prop, &[]) {
                    break Some(f);
                }
            }
        });
        let fail = fail.unwrap();
        assert!(fail.message.contains("panicked"), "{}", fail.message);
    }

    #[test]
    fn parse_seed_forms() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("16"), Some(16));
        assert_eq!(parse_seed(" 0X0a "), Some(10));
        assert_eq!(parse_seed("zzz"), None);
    }

    #[test]
    fn debug_short_truncates() {
        let long: Vec<u32> = (0..10_000).collect();
        let s = debug_short(&long);
        assert!(s.len() < 400);
        assert!(s.contains('…'));
        assert_eq!(debug_short(&1.5f64), "1.5");
    }

    // The macro must expand to working #[test] functions.
    crate::prop_cases! {
        fn macro_smoke_sum_is_monotone(g, cases = 10) {
            let a = g.f64_range(0.0, 1.0);
            let b = g.f64_range(0.0, 1.0);
            crate::prop_assert!(a + b >= a, "sum shrank: {a} {b}");
            crate::prop_assert_eq!(a.max(b), b.max(a));
        }
    }
}
