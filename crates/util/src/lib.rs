//! Shared utilities for the `fun3d-rs` workspace.
//!
//! This crate provides the small, dependency-free building blocks used
//! throughout the reproduction: wall-clock timers with named accumulating
//! phases, summary statistics, a deterministic seedable RNG (so every
//! experiment is reproducible bit-for-bit), cache-line aligned buffers for
//! SIMD kernels, and plain-text/CSV report writers used by the benchmark
//! harness.

pub mod aligned;
pub mod report;
pub mod rng;
pub mod stats;
pub mod timer;

pub use aligned::AlignedVec;
pub use rng::Rng64;
pub use stats::Summary;
pub use timer::{PhaseTimers, Timer};
