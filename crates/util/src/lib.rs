//! Shared utilities for the `fun3d-rs` workspace.
//!
//! This crate provides the small, dependency-free building blocks used
//! throughout the reproduction: wall-clock timers with named accumulating
//! phases, summary statistics, a deterministic seedable RNG (so every
//! experiment is reproducible bit-for-bit), cache-line aligned buffers for
//! SIMD kernels, plain-text/CSV report writers used by the benchmark
//! harness, a seeded property-testing harness ([`proptest_mini`]) and a
//! micro-benchmark runner ([`microbench`]). The whole workspace builds
//! from `std` alone — no external crates — so `cargo build` and
//! `cargo test` work offline with an empty registry cache.

pub mod aligned;
pub mod microbench;
pub mod perfdb;
pub mod proptest_mini;
pub mod report;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod timer;

pub use aligned::AlignedVec;
pub use rng::Rng64;
pub use stats::Summary;
pub use timer::{PhaseTimers, Timer};
