//! Profile exporters: folded flamegraph text and speedscope JSON.
//!
//! The sampler ([`super::sampler`]) produces weighted collapsed stacks;
//! this module renders them in the two interchange formats the
//! flamegraph ecosystem actually consumes:
//!
//! * **folded** — one line per distinct stack, `frame;frame;… count`,
//!   the input format of Brendan Gregg's `flamegraph.pl` and of
//!   `inferno-flamegraph`. The thread label is the root frame, so one
//!   file holds every thread's flame side by side.
//! * **speedscope** — the JSON file format of <https://www.speedscope.app>
//!   (`"type": "sampled"` profiles, one per thread, weights in
//!   nanoseconds), viewable offline in any speedscope build.
//!
//! Both renderers have strict validating counterparts
//! ([`check_folded`], [`check_speedscope`]) used by
//! `perf_report --check` / `scripts/verify.sh` to keep the artifacts
//! machine-readable as the schema evolves.

use super::json::Json;
use super::sampler::SampleProfile;
use std::fmt::Write as _;

/// Renders the folded-flamegraph text form: `thread;frame;… samples`,
/// sorted (stable across runs with identical stacks). Idle samples are
/// kept — `thread;(idle) N` — so per-thread sample totals equal the
/// tick count and utilization can be read off the flame widths.
pub fn folded(p: &SampleProfile) -> String {
    let mut out = String::new();
    for s in &p.stacks {
        let _ = write!(out, "{}", s.thread.replace(';', ","));
        for f in &s.frames {
            let _ = write!(out, ";{}", f.replace(';', ","));
        }
        let _ = writeln!(out, " {}", s.samples);
    }
    out
}

/// Validates folded text: every non-empty line must be
/// `stack<space>count` with a non-empty stack and a `u64` count.
/// Returns the number of stack lines.
pub fn check_folded(text: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no space-separated count", i + 1))?;
        if stack.trim().is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        count
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("line {}: count '{count}' is not a u64", i + 1))?;
        lines += 1;
    }
    if lines == 0 {
        return Err("no stack lines (empty profile)".to_string());
    }
    Ok(lines)
}

/// Renders a speedscope-format document: one `"sampled"` profile per
/// thread over a shared frame table, weights in nanoseconds.
pub fn speedscope(p: &SampleProfile, name: &str) -> Json {
    // Shared frame table; indices are first-seen order.
    fn frame_index<'a>(frames: &mut Vec<&'a str>, name: &'a str) -> usize {
        match frames.iter().position(|f| *f == name) {
            Some(i) => i,
            None => {
                frames.push(name);
                frames.len() - 1
            }
        }
    }
    let mut frame_names: Vec<&str> = Vec::new();

    // Group stacks by thread label, preserving the profile's sort.
    let mut profiles: Vec<(String, Vec<Json>, Vec<Json>, u64)> = Vec::new();
    for s in &p.stacks {
        if profiles.last().map(|(t, ..)| t.as_str()) != Some(s.thread.as_str()) {
            profiles.push((s.thread.clone(), Vec::new(), Vec::new(), 0));
        }
        let (_, samples, weights, end) = profiles.last_mut().unwrap();
        let idxs: Vec<Json> = s
            .frames
            .iter()
            .map(|f| Json::num(frame_index(&mut frame_names, f) as f64))
            .collect();
        let w = s.samples * p.period_ns;
        samples.push(Json::Arr(idxs));
        weights.push(Json::num(w as f64));
        *end += w;
    }

    let profiles_json: Vec<Json> = profiles
        .into_iter()
        .map(|(thread, samples, weights, end)| {
            Json::obj(vec![
                ("type", Json::str("sampled")),
                ("name", Json::str(thread)),
                ("unit", Json::str("nanoseconds")),
                ("startValue", Json::num(0.0)),
                ("endValue", Json::num(end as f64)),
                ("samples", Json::Arr(samples)),
                ("weights", Json::Arr(weights)),
            ])
        })
        .collect();
    Json::obj(vec![
        (
            "$schema",
            Json::str("https://www.speedscope.app/file-format-schema.json"),
        ),
        ("name", Json::str(name)),
        ("exporter", Json::str("fun3d-rs sampler")),
        (
            "shared",
            Json::obj(vec![(
                "frames",
                Json::Arr(
                    frame_names
                        .iter()
                        .map(|f| Json::obj(vec![("name", Json::str(*f))]))
                        .collect(),
                ),
            )]),
        ),
        ("profiles", Json::Arr(profiles_json)),
    ])
}

/// Validates a parsed speedscope document: schema URL, a shared frame
/// table, and per-profile samples/weights arrays of equal length whose
/// frame indices stay inside the table. Returns the profile count.
pub fn check_speedscope(doc: &Json) -> Result<usize, String> {
    doc.get("$schema")
        .and_then(Json::as_str)
        .filter(|s| s.contains("speedscope"))
        .ok_or("missing speedscope $schema")?;
    let nframes = doc
        .get("shared")
        .and_then(|s| s.get("frames"))
        .and_then(Json::as_arr)
        .ok_or("missing shared.frames")?
        .iter()
        .map(|f| {
            f.get("name")
                .and_then(Json::as_str)
                .map(|_| ())
                .ok_or("frame without name")
        })
        .collect::<Result<Vec<()>, _>>()?
        .len();
    let profiles = doc
        .get("profiles")
        .and_then(Json::as_arr)
        .ok_or("missing profiles array")?;
    if profiles.is_empty() {
        return Err("empty profiles array".to_string());
    }
    for p in profiles {
        if p.get("type").and_then(Json::as_str) != Some("sampled") {
            return Err("profile is not of type 'sampled'".to_string());
        }
        p.get("name").and_then(Json::as_str).ok_or("profile without name")?;
        let samples = p
            .get("samples")
            .and_then(Json::as_arr)
            .ok_or("profile without samples")?;
        let weights = p
            .get("weights")
            .and_then(Json::as_arr)
            .ok_or("profile without weights")?;
        if samples.len() != weights.len() {
            return Err(format!(
                "samples/weights length mismatch: {} vs {}",
                samples.len(),
                weights.len()
            ));
        }
        for s in samples {
            for idx in s.as_arr().ok_or("sample is not an array")? {
                let i = idx.as_f64().ok_or("frame index is not a number")?;
                if i < 0.0 || i as usize >= nframes {
                    return Err(format!("frame index {i} out of range ({nframes} frames)"));
                }
            }
        }
    }
    Ok(profiles.len())
}

#[cfg(test)]
mod tests {
    use super::super::sampler::{StackCount, IDLE_FRAME};
    use super::*;

    fn sample_profile() -> SampleProfile {
        SampleProfile {
            period_ns: 250_000,
            ticks: 10,
            missed: 0,
            truncated: 0,
            stacks: vec![
                StackCount {
                    thread: "fun3d-worker-0".into(),
                    frames: vec!["pool.region", "trsv"],
                    samples: 7,
                },
                StackCount {
                    thread: "fun3d-worker-0".into(),
                    frames: vec![IDLE_FRAME],
                    samples: 3,
                },
                StackCount {
                    thread: "main".into(),
                    frames: vec!["ptc.step"],
                    samples: 10,
                },
            ],
        }
    }

    #[test]
    fn folded_roundtrips_through_its_checker() {
        let text = folded(&sample_profile());
        assert!(text.contains("fun3d-worker-0;pool.region;trsv 7"));
        assert!(text.contains("fun3d-worker-0;(idle) 3"));
        let lines = check_folded(&text).unwrap();
        assert_eq!(lines, 3);
    }

    #[test]
    fn folded_escapes_separator_in_labels() {
        let p = SampleProfile {
            period_ns: 1,
            ticks: 1,
            missed: 0,
            truncated: 0,
            stacks: vec![StackCount {
                thread: "a;b".into(),
                frames: vec!["k"],
                samples: 1,
            }],
        };
        let text = folded(&p);
        assert!(text.starts_with("a,b;k 1"));
        check_folded(&text).unwrap();
    }

    #[test]
    fn checker_rejects_malformed_folded() {
        assert!(check_folded("").is_err());
        assert!(check_folded("no-count-here").is_err());
        assert!(check_folded("stack notanumber").is_err());
        assert!(check_folded(" 12").is_err());
        assert_eq!(check_folded("a;b 3\n\nc 1\n").unwrap(), 2);
    }

    #[test]
    fn speedscope_roundtrips_through_its_checker() {
        let doc = speedscope(&sample_profile(), "unit-test");
        let text = doc.render_pretty();
        let back = Json::parse(&text).unwrap();
        let nprofiles = check_speedscope(&back).unwrap();
        assert_eq!(nprofiles, 2, "one profile per thread label");
        // weights are samples × period
        let p0 = &back.get("profiles").unwrap().as_arr().unwrap()[0];
        let w = p0.get("weights").unwrap().as_arr().unwrap();
        assert_eq!(w[0].as_f64(), Some(7.0 * 250_000.0));
        assert_eq!(
            p0.get("endValue").and_then(Json::as_f64),
            Some(10.0 * 250_000.0)
        );
    }

    #[test]
    fn checker_rejects_malformed_speedscope() {
        let ok = speedscope(&sample_profile(), "t");
        assert!(check_speedscope(&ok).is_ok());
        assert!(check_speedscope(&Json::obj(vec![])).is_err());
        // out-of-range frame index
        let bad = Json::obj(vec![
            (
                "$schema",
                Json::str("https://www.speedscope.app/file-format-schema.json"),
            ),
            (
                "shared",
                Json::obj(vec![(
                    "frames",
                    Json::Arr(vec![Json::obj(vec![("name", Json::str("f"))])]),
                )]),
            ),
            (
                "profiles",
                Json::Arr(vec![Json::obj(vec![
                    ("type", Json::str("sampled")),
                    ("name", Json::str("t")),
                    ("unit", Json::str("nanoseconds")),
                    ("startValue", Json::num(0.0)),
                    ("endValue", Json::num(1.0)),
                    ("samples", Json::Arr(vec![Json::Arr(vec![Json::num(5.0)])])),
                    ("weights", Json::Arr(vec![Json::num(1.0)])),
                ])]),
            ),
        ]);
        assert!(check_speedscope(&bad).is_err());
    }
}
