//! Live metrics plane: a lock-free registry of counters, gauges, and
//! log-bucketed latency histograms, always on in production builds.
//!
//! Where spans ([`super::ring`]) and the flight recorder
//! ([`super::flight`]) reconstruct *what happened* after the fact, this
//! module answers "what are your p99 and hit rate **right now**" — the
//! continuous-measurement loop the paper's methodology (Fig. 5–8
//! profiles on live hardware) depends on, promoted from bench-time
//! sorted vectors to an in-process, queryable plane.
//!
//! ## Publication discipline
//!
//! Histograms follow the repo's single-writer publication protocol: each
//! recording thread owns one [`HistShard`] per histogram and is its only
//! writer. A record is one relaxed `fetch_add` on a bucket word followed
//! by a **Release** increment of the shard's record count; a collector
//! Acquire-loads the count first and then reads the buckets relaxed, so
//! every bucket increment covered by the count it observed is visible
//! (`sum(buckets) + overflow >= count`, never less). The protocol is
//! model-checked under `--cfg fun3d_check`
//! (`crates/util/tests/model_metrics_shard.rs`), including a
//! Release→Relaxed mutant the checker must catch. Counters and gauges
//! are single relaxed RMWs/stores on shared words — monotonic or
//! last-write-wins statistics with no multi-word invariant to protect.
//!
//! ## Bucket layout (HDR-style)
//!
//! Values are `u64` nanoseconds. The first 64 buckets are exact
//! (`0..64` ns); above that each power-of-two range `[2^t, 2^{t+1})` is
//! split into 64 equal sub-buckets, so the relative width of any bucket
//! is at most 1/64 (~1.6%, ≈2 significant digits) from 64 ns up to
//! 2^43 ns (~2.4 hours). The whole array is [`BUCKETS`] = 2432 `u64`
//! words (~19 KB) per shard — fixed footprint, no allocation on record.
//! Values past the top bucket land in an exact overflow counter and the
//! exact maximum is tracked separately, so nothing is silently lost.
//!
//! ## Enablement
//!
//! `FUN3D_METRICS=off|0|false|none` disables the plane; every
//! instrumentation site then costs one relaxed atomic load and a branch
//! and allocates nothing (asserted by
//! `crates/util/tests/metrics_overhead.rs`, the PR 2 telemetry
//! discipline). Default: on.

use super::json::Json;
use super::now_ns;
// Shim atomics carry the histogram shard's publication protocol: std
// atomics in normal builds, fun3d-check's tracked types under
// `--cfg fun3d_check` so the model tests explore the real orderings.
use fun3d_check::shim::{AtomicU64, Ordering};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, AtomicU8, Ordering as StdOrdering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------

const STATE_UNSET: u8 = u8::MAX;
static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

#[cold]
fn init_state_from_env() -> bool {
    let on = match std::env::var("FUN3D_METRICS") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "none"
        ),
        Err(_) => true, // always-on default
    };
    let _ = STATE.compare_exchange(
        STATE_UNSET,
        on as u8,
        StdOrdering::Relaxed,
        StdOrdering::Relaxed,
    );
    STATE.load(StdOrdering::Relaxed) != 0
}

/// Whether the metrics plane is recording (first call reads
/// `FUN3D_METRICS`; afterwards one relaxed load).
#[inline]
pub fn enabled() -> bool {
    let v = STATE.load(StdOrdering::Relaxed);
    if v == STATE_UNSET {
        init_state_from_env()
    } else {
        v != 0
    }
}

/// Overrides the enablement (tools and tests; effective immediately on
/// all threads).
pub fn set_enabled(on: bool) {
    STATE.store(on as u8, StdOrdering::Relaxed);
}

// ---------------------------------------------------------------------
// Bucket geometry
// ---------------------------------------------------------------------

/// log2 of the sub-bucket count per power-of-two range.
pub const SUB_BITS: u32 = 6;
const SUB: usize = 1 << SUB_BITS; // 64
/// Highest power-of-two range start covered: values below
/// `2^(MAX_EXP + 1)` ns (~2.4 h) are bucketed, larger ones overflow.
const MAX_EXP: u32 = 42;
/// Total bucket count: 64 exact + 64 per range for ranges 2^6..=2^42.
pub const BUCKETS: usize = SUB + (MAX_EXP - SUB_BITS + 1) as usize * SUB;

/// Bucket index for a value, or `None` when it exceeds the top range.
#[inline]
pub fn bucket_of(v: u64) -> Option<usize> {
    if v < SUB as u64 {
        return Some(v as usize);
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS here
    if top > MAX_EXP {
        return None;
    }
    let sub = ((v >> (top - SUB_BITS)) as usize) - SUB;
    Some(SUB + (top - SUB_BITS) as usize * SUB + sub)
}

/// Half-open value range `[lo, hi)` covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i < SUB {
        return (i as u64, i as u64 + 1);
    }
    let block = (i - SUB) / SUB; // power-of-two range index
    let sub = ((i - SUB) % SUB) as u64;
    let shift = block as u32; // width = 2^shift within range 2^(6+block)
    let lo = (SUB as u64 + sub) << shift;
    (lo, lo + (1u64 << shift))
}

// ---------------------------------------------------------------------
// Shared quantile helper
// ---------------------------------------------------------------------

/// Nearest-rank quantile of an **ascending-sorted** slice.
///
/// The single quantile definition shared by the histogram extraction
/// below and `load_gen`'s exact sorted-vector percentiles, so the two
/// can be cross-checked within bucket error. Edge behavior (the
/// `load_gen::percentile` fixes): an empty slice yields `NaN` instead
/// of panicking, a single sample is every quantile of itself, `q` is
/// clamped to `[0, 1]`, and `q = 1.0` indexes the last element exactly
/// (no float-rounding indexing).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let n = sorted.len();
    // Nearest rank: smallest k with k/n >= q, clamped to [1, n].
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

// ---------------------------------------------------------------------
// Histogram shard (the model-checked protocol)
// ---------------------------------------------------------------------

/// One thread's private histogram storage. The owning thread is the
/// only writer; collectors read concurrently via the count handshake.
pub struct HistShard {
    buckets: Box<[AtomicU64]>,
    /// Records published so far. The Release increment here is the
    /// publication edge a collector's Acquire load pairs with.
    count: AtomicU64,
    // Statistics outside the checked protocol (plain std atomics, like
    // `Bell::pace_ns`): exact accumulators a collector reads relaxed.
    sum: StdAtomicU64,
    max: StdAtomicU64,
    overflow: StdAtomicU64,
}

impl HistShard {
    /// A shard with the full production bucket array.
    pub fn new() -> HistShard {
        HistShard::with_buckets(BUCKETS)
    }

    /// A shard with a reduced bucket array — the model tests drive the
    /// publication protocol over a handful of tracked atomics instead
    /// of 2432.
    pub fn with_buckets(n: usize) -> HistShard {
        HistShard {
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: StdAtomicU64::new(0),
            max: StdAtomicU64::new(0),
            overflow: StdAtomicU64::new(0),
        }
    }

    /// Writer: records a value in nanoseconds. Single-writer only.
    #[inline]
    pub fn record(&self, v: u64) {
        match bucket_of(v) {
            Some(i) if i < self.buckets.len() => {
                // Relaxed payload store; the Release count below orders it.
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.overflow.fetch_add(1, StdOrdering::Relaxed);
            }
        }
        self.sum.fetch_add(v, StdOrdering::Relaxed);
        self.max.fetch_max(v, StdOrdering::Relaxed);
        // Publish: a collector that Acquires this count sees the bucket
        // increment above (the protocol the model tests verify).
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Writer (model tests): records directly into bucket `i`, the
    /// protocol skeleton without the value→bucket mapping.
    pub fn record_bucket(&self, i: usize) {
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Collector: `(published count, bucket counts)`. The count is
    /// loaded first (Acquire), so the returned buckets account for at
    /// least that many records: `sum(buckets) >= count - overflow`.
    pub fn read(&self) -> (u64, Vec<u64>) {
        let c = self.count.load(Ordering::Acquire);
        let buckets = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        (c, buckets)
    }

    fn overflow_count(&self) -> u64 {
        self.overflow.load(StdOrdering::Relaxed)
    }

    fn sum_value(&self) -> u64 {
        self.sum.load(StdOrdering::Relaxed)
    }

    fn max_value(&self) -> u64 {
        self.max.load(StdOrdering::Relaxed)
    }

    /// Forgets all records. Quiescent points only (the owning writer
    /// must not be recording concurrently).
    pub fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, StdOrdering::Relaxed);
        self.max.store(0, StdOrdering::Relaxed);
        self.overflow.store(0, StdOrdering::Relaxed);
        self.count.store(0, Ordering::Release);
    }
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard::new()
    }
}

// ---------------------------------------------------------------------
// Metric types
// ---------------------------------------------------------------------

/// A monotonic counter (requests served, sheds, cache hits).
pub struct Counter {
    value: StdAtomicU64,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            value: StdAtomicU64::new(0),
        }
    }

    /// Adds `n`. One relaxed RMW; free branch when disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, StdOrdering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(StdOrdering::Relaxed)
    }
}

/// A last-write-wins gauge (queue depth, inflight jobs, cache
/// occupancy).
pub struct Gauge {
    value: StdAtomicU64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            value: StdAtomicU64::new(0),
        }
    }

    /// Sets the gauge. One relaxed store.
    #[inline]
    pub fn set(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.value.store(v, StdOrdering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(StdOrdering::Relaxed)
    }
}

/// A log-bucketed latency histogram: per-thread [`HistShard`]s merged
/// at collection time.
pub struct Histogram {
    /// Process-unique id keying the per-thread shard cache.
    id: u64,
    shards: Mutex<Vec<Arc<HistShard>>>,
}

thread_local! {
    /// This thread's shard per histogram id. A small linear-scan vec:
    /// threads touch a handful of histograms, and a scan of a few
    /// entries beats hashing on the record path.
    static SHARDS: std::cell::RefCell<Vec<(u64, Arc<HistShard>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Histogram {
    fn new() -> Histogram {
        static NEXT: StdAtomicU64 = StdAtomicU64::new(1);
        Histogram {
            id: NEXT.fetch_add(1, StdOrdering::Relaxed),
            shards: Mutex::new(Vec::new()),
        }
    }

    /// Records a value in nanoseconds. Lock-free after this thread's
    /// first record (which registers the thread's shard); a single
    /// relaxed load and branch when disabled.
    #[inline]
    pub fn record(&self, ns: u64) {
        if !enabled() {
            return;
        }
        self.record_always(ns);
    }

    fn record_always(&self, ns: u64) {
        SHARDS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, shard)) = cache.iter().find(|(id, _)| *id == self.id) {
                shard.record(ns);
                return;
            }
            let shard = Arc::new(HistShard::new());
            self.shards.lock().unwrap().push(Arc::clone(&shard));
            shard.record(ns);
            cache.push((self.id, shard));
        });
    }

    /// Records a duration.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merges every thread's shard into one [`HistSnapshot`].
    pub fn snapshot(&self, name: &str) -> HistSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        let (mut overflow, mut sum, mut max) = (0u64, 0u64, 0u64);
        for shard in self.shards.lock().unwrap().iter() {
            let (_count, b) = shard.read();
            for (acc, v) in buckets.iter_mut().zip(&b) {
                *acc += v;
            }
            overflow += shard.overflow_count();
            sum += shard.sum_value();
            max = max.max(shard.max_value());
        }
        let count = buckets.iter().sum::<u64>() + overflow;
        HistSnapshot {
            name: name.to_string(),
            count,
            sum_ns: sum,
            max_ns: max,
            overflow,
            buckets: buckets
                .into_iter()
                .enumerate()
                .filter(|&(_, c)| c > 0)
                .collect(),
        }
    }

    /// Clears every shard. Quiescent points only.
    pub fn clear(&self) {
        for shard in self.shards.lock().unwrap().iter() {
            shard.clear();
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
    })
}

/// The named counter, created on first use. Hold the `Arc` at the call
/// site; the registry lock is for lookup, never for recording.
pub fn counter(name: &str) -> Arc<Counter> {
    Arc::clone(
        registry()
            .counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new())),
    )
}

/// The named gauge, created on first use.
pub fn gauge(name: &str) -> Arc<Gauge> {
    Arc::clone(
        registry()
            .gauges
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new())),
    )
}

/// The named histogram, created on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    Arc::clone(
        registry()
            .hists
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new())),
    )
}

thread_local! {
    /// Static-name handle cache for the free-function recorders below,
    /// so instrumentation sites pay a TL linear scan instead of the
    /// registry lock per record.
    static NAMED: std::cell::RefCell<Vec<(&'static str, Arc<Histogram>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
    static NAMED_CTR: std::cell::RefCell<Vec<(&'static str, Arc<Counter>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Records `ns` into the named histogram — the one-line instrumentation
/// entry point for static metric names. A single relaxed load and
/// branch when disabled.
#[inline]
pub fn record_ns(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    NAMED.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((_, h)) = cache.iter().find(|(n, _)| *n == name) {
            h.record_always(ns);
            return;
        }
        let h = histogram(name);
        h.record_always(ns);
        cache.push((name, h));
    });
}

/// Adds `n` to the named counter (static-name fast path).
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    NAMED_CTR.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((_, c)) = cache.iter().find(|(nm, _)| *nm == name) {
            c.value.fetch_add(n, StdOrdering::Relaxed);
            return;
        }
        let c = counter(name);
        c.value.fetch_add(n, StdOrdering::Relaxed);
        cache.push((name, c));
    });
}

/// Clears every registered metric. Quiescent points only (tests,
/// bench phase boundaries).
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().unwrap().values() {
        c.value.store(0, StdOrdering::Relaxed);
    }
    for g in reg.gauges.lock().unwrap().values() {
        g.value.store(0, StdOrdering::Relaxed);
    }
    for h in reg.hists.lock().unwrap().values() {
        h.clear();
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// Merged view of one histogram at a point in time. Mergeable (ranks /
/// teams aggregate) and subtractable (per-phase deltas).
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    /// Registry name.
    pub name: String,
    /// Total records, including overflow.
    pub count: u64,
    /// Exact sum of recorded values, ns.
    pub sum_ns: u64,
    /// Exact maximum recorded value, ns.
    pub max_ns: u64,
    /// Records past the top bucket (still counted in `count`/`sum_ns`).
    pub overflow: u64,
    /// Sparse nonzero `(bucket index, count)` pairs, index-ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistSnapshot {
    /// An empty snapshot (merge identity).
    pub fn empty(name: &str) -> HistSnapshot {
        HistSnapshot {
            name: name.to_string(),
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            overflow: 0,
            buckets: Vec::new(),
        }
    }

    /// Nearest-rank quantile in nanoseconds (bucket midpoint; exact max
    /// for ranks landing in overflow). `NaN` when empty. Matches
    /// [`quantile_sorted`]'s rank definition, so the two agree within
    /// one bucket width.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                let (lo, hi) = bucket_bounds(i);
                return (lo + hi) as f64 / 2.0;
            }
        }
        // Rank lands in the overflow region: the exact max is the best
        // (and an upper-bound-correct) answer.
        self.max_ns as f64
    }

    /// Arithmetic mean in nanoseconds (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Folds another snapshot in (rank/team aggregation).
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.overflow += other.overflow;
        let mut merged: BTreeMap<usize, u64> = self.buckets.iter().copied().collect();
        for &(i, c) in &other.buckets {
            *merged.entry(i).or_insert(0) += c;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// The records added since `earlier` (a per-phase delta). `earlier`
    /// must be a snapshot of the same histogram taken before `self`.
    pub fn delta_from(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let earlier_by_idx: BTreeMap<usize, u64> = earlier.buckets.iter().copied().collect();
        let buckets: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .map(|&(i, c)| (i, c.saturating_sub(earlier_by_idx.get(&i).copied().unwrap_or(0))))
            .filter(|&(_, c)| c > 0)
            .collect();
        let overflow = self.overflow.saturating_sub(earlier.overflow);
        HistSnapshot {
            name: self.name.clone(),
            count: buckets.iter().map(|&(_, c)| c).sum::<u64>() + overflow,
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            // The delta's max is unknowable from endpoints; the lifetime
            // max is a correct upper bound.
            max_ns: self.max_ns,
            overflow,
            buckets,
        }
    }
}

/// Every registered metric at a point in time, names sorted.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the telemetry epoch at collection.
    pub t_ns: u64,
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// One merged snapshot per histogram.
    pub hists: Vec<HistSnapshot>,
}

impl MetricsSnapshot {
    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The named gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The named histogram, if present.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }
}

/// Collects every registered metric into a [`MetricsSnapshot`]. Safe at
/// any time (the shard protocol tolerates concurrent writers).
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(n, c)| (n.clone(), c.value()))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|(n, g)| (n.clone(), g.value()))
        .collect();
    let hists = reg
        .hists
        .lock()
        .unwrap()
        .iter()
        .map(|(n, h)| h.snapshot(n))
        .collect();
    MetricsSnapshot {
        t_ns: now_ns(),
        counters,
        gauges,
        hists,
    }
}

// ---------------------------------------------------------------------
// Exposition: strict JSON
// ---------------------------------------------------------------------

/// Schema tag on every JSON metrics snapshot.
pub const SCHEMA: &str = "fun3d.metrics.v1";

/// Renders one histogram as its JSON snapshot object (the per-name
/// value inside [`snapshot_json`]'s `histograms` map; also embedded by
/// `trace::assemble` as per-request stage context).
pub fn hist_json(h: &HistSnapshot) -> Json {
    let buckets = h
        .buckets
        .iter()
        .map(|&(i, c)| {
            let (lo, hi) = bucket_bounds(i);
            Json::Arr(vec![
                Json::num(lo as f64),
                Json::num(hi as f64),
                Json::num(c as f64),
            ])
        })
        .collect();
    Json::obj(vec![
        ("count", Json::num(h.count as f64)),
        ("sum_ns", Json::num(h.sum_ns as f64)),
        ("max_ns", Json::num(h.max_ns as f64)),
        ("overflow", Json::num(h.overflow as f64)),
        ("p50_ns", super::flight::json_f64(h.quantile(0.50))),
        ("p90_ns", super::flight::json_f64(h.quantile(0.90))),
        ("p99_ns", super::flight::json_f64(h.quantile(0.99))),
        ("buckets", Json::Arr(buckets)),
    ])
}

/// Renders a snapshot as the strict-JSON artifact `metrics_view` and
/// the `--metrics-socket` endpoint serve (validated by
/// [`check_snapshot`]).
pub fn snapshot_json(snap: &MetricsSnapshot) -> Json {
    let counters = snap
        .counters
        .iter()
        .map(|(n, v)| (n.as_str(), Json::num(*v as f64)))
        .collect::<Vec<_>>();
    let gauges = snap
        .gauges
        .iter()
        .map(|(n, v)| (n.as_str(), Json::num(*v as f64)))
        .collect::<Vec<_>>();
    let hists = snap
        .hists
        .iter()
        .map(|h| (h.name.as_str(), hist_json(h)))
        .collect::<Vec<_>>();
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        ("t_ns", Json::num(snap.t_ns as f64)),
        ("counters", Json::obj(counters)),
        ("gauges", Json::obj(gauges)),
        ("histograms", Json::obj(hists)),
    ])
}

/// Strictly validates a JSON metrics snapshot: schema tag, non-negative
/// numeric counters/gauges, and per histogram — required keys, ordered
/// disjoint bucket bounds, bucket-count/overflow/count consistency, and
/// quantile ordering. Returns the number of metrics validated.
pub fn check_snapshot(doc: &Json) -> Result<usize, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, want {SCHEMA:?}"));
    }
    doc.get("t_ns")
        .and_then(Json::as_f64)
        .ok_or("missing t_ns")?;
    let mut metrics = 0usize;
    for section in ["counters", "gauges"] {
        let Json::Obj(entries) = doc.get(section).ok_or_else(|| format!("missing {section}"))?
        else {
            return Err(format!("{section} is not an object"));
        };
        for (name, v) in entries {
            let x = v
                .as_f64()
                .ok_or_else(|| format!("{section}.{name}: not a number"))?;
            if !(x >= 0.0) {
                return Err(format!("{section}.{name}: negative or NaN value {x}"));
            }
            metrics += 1;
        }
    }
    let Json::Obj(hists) = doc.get("histograms").ok_or("missing histograms")? else {
        return Err("histograms is not an object".to_string());
    };
    for (name, h) in hists {
        let field = |k: &str| -> Result<f64, String> {
            h.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("histograms.{name}: missing {k}"))
        };
        let count = field("count")?;
        field("sum_ns")?;
        let max_ns = field("max_ns")?;
        let overflow = field("overflow")?;
        let buckets = h
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("histograms.{name}: missing buckets"))?;
        let mut prev_hi = -1.0f64;
        let mut total = 0.0f64;
        for (i, b) in buckets.iter().enumerate() {
            let row = b
                .as_arr()
                .filter(|r| r.len() == 3)
                .ok_or_else(|| format!("histograms.{name}: bucket[{i}] is not [lo, hi, count]"))?;
            let lo = row[0].as_f64().ok_or_else(|| format!("histograms.{name}: bucket[{i}] lo"))?;
            let hi = row[1].as_f64().ok_or_else(|| format!("histograms.{name}: bucket[{i}] hi"))?;
            let c = row[2].as_f64().ok_or_else(|| format!("histograms.{name}: bucket[{i}] count"))?;
            if !(lo < hi) || lo < prev_hi {
                return Err(format!(
                    "histograms.{name}: bucket[{i}] bounds [{lo}, {hi}) not ordered/disjoint"
                ));
            }
            if !(c > 0.0) {
                return Err(format!(
                    "histograms.{name}: bucket[{i}] count {c} not positive (sparse form)"
                ));
            }
            prev_hi = hi;
            total += c;
        }
        if (total + overflow - count).abs() > 0.5 {
            return Err(format!(
                "histograms.{name}: bucket sum {total} + overflow {overflow} != count {count}"
            ));
        }
        if count > 0.0 {
            let p50 = field("p50_ns")?;
            let p90 = field("p90_ns")?;
            let p99 = field("p99_ns")?;
            if !(p50 <= p90 && p90 <= p99) {
                return Err(format!(
                    "histograms.{name}: quantiles not ordered (p50 {p50}, p90 {p90}, p99 {p99})"
                ));
            }
            // The p99 is a bucket midpoint: it may exceed the exact max by
            // at most half its bucket's width (<= max/64 above 64 ns, < 1
            // below), never more.
            if p99 > max_ns.max(64.0) * (1.0 + 1.0 / SUB as f64) {
                return Err(format!(
                    "histograms.{name}: p99 {p99} above max_ns {max_ns} by more than bucket error"
                ));
            }
        }
        metrics += 1;
    }
    Ok(metrics)
}

// ---------------------------------------------------------------------
// Exposition: Prometheus text format
// ---------------------------------------------------------------------

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("fun3d_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format:
/// counters as `counter`, gauges as `gauge`, histograms as cumulative
/// `_bucket{le=...}` series (nanosecond bounds, sparse nonzero buckets
/// plus `+Inf`) with `_sum` / `_count`.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for h in &snap.hists {
        let n = prom_name(&h.name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cum = 0u64;
        for &(i, c) in &h.buckets {
            cum += c;
            let (_, hi) = bucket_bounds(i);
            out.push_str(&format!("{n}_bucket{{le=\"{hi}\"}} {cum}\n"));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n", h.sum_ns));
        out.push_str(&format!("{n}_count {}\n", h.count));
    }
    out
}

/// Validates Prometheus text exposition: every line is a `# TYPE` /
/// `# HELP` comment or a `name[{labels}] value` sample with a finite
/// value; histogram `le` bounds strictly increase with non-decreasing
/// cumulative counts, end at `+Inf`, and the `+Inf` count equals the
/// family's `_count` sample. Returns the number of samples.
pub fn check_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    // Per histogram family: (last le, last cum, +Inf count).
    let mut cur_hist: Option<(String, f64, f64, Option<f64>)> = None;
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut infs: BTreeMap<String, f64> = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kw = parts.next().unwrap_or("");
            if kw != "TYPE" && kw != "HELP" {
                return Err(format!("line {}: unknown comment {line:?}", ln + 1));
            }
            if kw == "TYPE" {
                let name = parts.next().ok_or(format!("line {}: TYPE without name", ln + 1))?;
                let ty = parts.next().ok_or(format!("line {}: TYPE without type", ln + 1))?;
                if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {}: unknown metric type {ty:?}", ln + 1));
                }
                cur_hist = (ty == "histogram")
                    .then(|| (name.to_string(), f64::NEG_INFINITY, 0.0, None));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find(' ') {
            Some(sp) => (&line[..sp], line[sp + 1..].trim()),
            None => return Err(format!("line {}: sample without value: {line:?}", ln + 1)),
        };
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {}: bad sample value {value_part:?}", ln + 1))?;
        if !value.is_finite() {
            return Err(format!("line {}: non-finite sample value", ln + 1));
        }
        samples += 1;
        let (name, labels) = match name_part.find('{') {
            Some(b) => {
                if !name_part.ends_with('}') {
                    return Err(format!("line {}: unterminated labels: {line:?}", ln + 1));
                }
                (&name_part[..b], &name_part[b + 1..name_part.len() - 1])
            }
            None => (name_part, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name {name:?}", ln + 1));
        }
        if let Some(stripped) = name.strip_suffix("_count") {
            counts.insert(stripped.to_string(), value);
        }
        if let Some((fam, last_le, last_cum, inf)) = cur_hist.as_mut() {
            if name == format!("{fam}_bucket") {
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or(format!("line {}: bucket without le label", ln + 1))?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("line {}: bad le bound {le:?}", ln + 1))?
                };
                if bound <= *last_le {
                    return Err(format!("line {}: le bounds not increasing", ln + 1));
                }
                if value < *last_cum {
                    return Err(format!("line {}: bucket counts not cumulative", ln + 1));
                }
                *last_le = bound;
                *last_cum = value;
                if bound.is_infinite() {
                    *inf = Some(value);
                    infs.insert(fam.clone(), value);
                }
            }
        }
    }
    for (fam, inf) in &infs {
        match counts.get(fam) {
            Some(c) if (c - inf).abs() < 0.5 => {}
            Some(c) => {
                return Err(format!(
                    "histogram {fam}: +Inf bucket {inf} != _count {c}"
                ))
            }
            None => return Err(format!("histogram {fam}: missing _count sample")),
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prop_assert, prop_cases};

    /// Tests that flip the global gate serialize here and restore it.
    static GATE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn bucket_mapping_round_trips_and_is_monotone() {
        // Exhaustive low range + sampled high range: every value lands in
        // a bucket whose bounds contain it, and indices are monotone.
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let i = bucket_of(v).unwrap();
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "v={v} not in [{lo}, {hi})");
            assert!(i >= prev);
            prev = i;
        }
        for shift in 12..43u32 {
            for off in [0u64, 1, 12345] {
                let v = (1u64 << shift) + off;
                let i = bucket_of(v).unwrap();
                let (lo, hi) = bucket_bounds(i);
                assert!(lo <= v && v < hi, "v={v} not in [{lo}, {hi})");
                // Relative bucket width is the 2-significant-digit claim.
                assert!((hi - lo) as f64 / lo as f64 <= 1.0 / SUB as f64 + 1e-12);
            }
        }
        // Top edge: the largest covered value and the first overflow.
        assert!(bucket_of((1u64 << 43) - 1).is_some());
        assert_eq!(bucket_of(1u64 << 43), None);
        assert_eq!(bucket_of(u64::MAX), None);
        // The last bucket's hi is exactly the overflow threshold.
        assert_eq!(bucket_bounds(BUCKETS - 1).1, 1u64 << 43);
    }

    #[test]
    fn quantile_sorted_edges() {
        // The satellite-task contract: no panic on empty, sane single
        // sample, exact p=0/p=1 indexing.
        assert!(quantile_sorted(&[], 0.5).is_nan());
        assert_eq!(quantile_sorted(&[7.0], 0.0), 7.0);
        assert_eq!(quantile_sorted(&[7.0], 0.5), 7.0);
        assert_eq!(quantile_sorted(&[7.0], 1.0), 7.0);
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 100.0);
        assert_eq!(quantile_sorted(&xs, 0.5), 50.0);
        assert_eq!(quantile_sorted(&xs, 0.99), 99.0);
        // Clamping, not panicking, outside [0, 1].
        assert_eq!(quantile_sorted(&xs, -1.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 2.0), 100.0);
        // Two samples: p50 is the first (rank ceil(0.5*2)=1).
        assert_eq!(quantile_sorted(&[1.0, 9.0], 0.5), 1.0);
        assert_eq!(quantile_sorted(&[1.0, 9.0], 0.51), 9.0);
    }

    #[test]
    fn histogram_records_and_extracts() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 1000, 2000, 1_000_000] {
            h.record_always(v);
        }
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum_ns, 10 + 20 + 30 + 1000 + 2000 + 1_000_000);
        assert_eq!(snap.max_ns, 1_000_000);
        assert_eq!(snap.overflow, 0);
        // Exact buckets below 64 ns.
        assert!((snap.quantile(0.0) - 10.5).abs() < 1.0);
        // p100 rank = count → last bucket (1 ms, ~1.6% wide).
        let p100 = snap.quantile(1.0);
        assert!((p100 - 1_000_000.0).abs() / 1_000_000.0 < 0.02, "{p100}");
    }

    #[test]
    fn histogram_overflow_is_exact() {
        let h = Histogram::new();
        h.record_always(1u64 << 43); // first value past the top bucket
        h.record_always(100);
        let snap = h.snapshot("o");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.max_ns, 1u64 << 43);
        // p100 lands in overflow → exact max.
        assert_eq!(snap.quantile(1.0), (1u64 << 43) as f64);
    }

    #[test]
    fn shards_merge_across_threads() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record_always(t * 1000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot("m");
        assert_eq!(snap.count, 4000);
        assert_eq!(h.shards.lock().unwrap().len(), 4, "one shard per thread");
    }

    #[test]
    fn snapshot_merge_and_delta() {
        let a = {
            let h = Histogram::new();
            for v in [100u64, 200, 300] {
                h.record_always(v);
            }
            h.snapshot("x")
        };
        let b = {
            let h = Histogram::new();
            for v in [400u64, 500] {
                h.record_always(v);
            }
            h.snapshot("x")
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count, 5);
        assert_eq!(m.sum_ns, 1500);
        assert_eq!(m.max_ns, 500);
        let d = m.delta_from(&a);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum_ns, 900);
        // Delta of identical snapshots is empty.
        let z = m.delta_from(&m);
        assert_eq!(z.count, 0);
        assert!(z.buckets.is_empty());
    }

    #[test]
    fn registry_returns_same_metric_for_same_name() {
        let c1 = counter("test.reg.counter");
        let c2 = counter("test.reg.counter");
        assert!(Arc::ptr_eq(&c1, &c2));
        let h1 = histogram("test.reg.hist");
        let h2 = histogram("test.reg.hist");
        assert!(Arc::ptr_eq(&h1, &h2));
        let _g = GATE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(true);
        c1.add(3);
        c2.add(4);
        assert_eq!(c1.value(), 7);
        let g1 = gauge("test.reg.gauge");
        g1.set(42);
        assert_eq!(gauge("test.reg.gauge").value(), 42);
        let snap = snapshot();
        assert_eq!(snap.counter("test.reg.counter"), 7);
        assert_eq!(snap.gauge("test.reg.gauge"), 42);
    }

    #[test]
    fn disabled_gate_records_nothing() {
        let _g = GATE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(false);
        let c = counter("test.gate.counter");
        let h = histogram("test.gate.hist");
        let gge = gauge("test.gate.gauge");
        c.add(10);
        h.record(123);
        gge.set(9);
        record_ns("test.gate.free", 55);
        counter_add("test.gate.free_ctr", 5);
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.counter("test.gate.counter"), 0);
        assert_eq!(snap.gauge("test.gate.gauge"), 0);
        assert_eq!(snap.hist("test.gate.hist").map(|h| h.count), Some(0));
        assert_eq!(snap.hist("test.gate.free").map(|h| h.count).unwrap_or(0), 0);
        assert_eq!(snap.counter("test.gate.free_ctr"), 0);
    }

    #[test]
    fn json_snapshot_round_trips_and_validates() {
        let _g = GATE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(true);
        let h = histogram("test.json.hist");
        for v in [1_000u64, 2_000, 50_000, 1_000_000] {
            h.record_always(v);
        }
        counter("test.json.ctr").add(5);
        gauge("test.json.gauge").set(17);
        let snap = snapshot();
        let doc = snapshot_json(&snap);
        let rendered = doc.render();
        let parsed = Json::parse(&rendered).expect("snapshot renders to valid JSON");
        let n = check_snapshot(&parsed).expect("snapshot validates");
        assert!(n >= 3);
        // Corruptions must fail: schema, and a count inconsistency.
        let bad_schema = rendered.replace(SCHEMA, "fun3d.metrics.v0");
        assert!(check_snapshot(&Json::parse(&bad_schema).unwrap()).is_err());
        let bad_count = rendered.replace("\"count\":4", "\"count\":40");
        if bad_count != rendered {
            assert!(check_snapshot(&Json::parse(&bad_count).unwrap()).is_err());
        }
    }

    #[test]
    fn prometheus_exposition_validates_and_catches_corruption() {
        let _g = GATE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(true);
        let h = histogram("test.prom.hist");
        for v in [500u64, 1500, 2500, 100_000] {
            h.record_always(v);
        }
        counter("test.prom.ctr").add(2);
        let text = render_prometheus(&snapshot());
        let samples = check_prometheus(&text).expect("exposition validates");
        assert!(samples >= 5);
        assert!(text.contains("# TYPE fun3d_test_prom_hist histogram"));
        assert!(text.contains("fun3d_test_prom_hist_bucket{le=\"+Inf\"}"));
        // Corrupt the +Inf bucket: cumulative consistency must fail.
        let bad = text.replace("le=\"+Inf\"} 4", "le=\"+Inf\"} 400");
        if bad != text {
            assert!(check_prometheus(&bad).is_err());
        }
        assert!(check_prometheus("bogus line without value\n").is_err());
        assert!(check_prometheus("# WAT comment\n").is_err());
    }

    prop_cases! {
        /// The acceptance-criteria property: histogram quantiles agree
        /// with exact sorted percentiles within one log-bucket width,
        /// over randomized value distributions spanning ns → seconds.
        fn quantiles_bounded_error(g, cases = 32) {
            let n = g.usize_range(1, 400);
            let h = Histogram::new();
            let mut exact: Vec<f64> = Vec::with_capacity(n);
            for _ in 0..n {
                // Log-uniform over ~9 decades, the shape of a latency mix.
                let exp = g.f64_range(0.0, 9.0);
                let v = 10f64.powf(exp) as u64;
                h.record_always(v);
                exact.push(v as f64);
            }
            exact.sort_by(|a, b| a.total_cmp(b));
            let snap = h.snapshot("prop");
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                let approx = snap.quantile(q);
                let truth = quantile_sorted(&exact, q);
                // One bucket width: relative 1/64 above 64 ns, absolute 1
                // below (exact integer buckets, half-step midpoints).
                let tol = (truth / SUB as f64).max(1.0);
                prop_assert!(
                    (approx - truth).abs() <= tol,
                    "q={} approx={} truth={} tol={}", q, approx, truth, tol
                );
            }
        }
    }
}
