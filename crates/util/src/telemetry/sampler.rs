//! Statistical sampling profiler over the span instrumentation.
//!
//! The span rings ([`super::ring`]) record *every* completed interval —
//! exact but bounded by ring capacity and useless for attributing time
//! to spans that are still open. This module adds the complementary
//! statistical view the paper's Fig. 5 profile is really about: each
//! instrumented thread continuously **publishes its current open-span
//! path** (the stack of span names it is inside) in a per-thread
//! [`SpanSlot`], and a background sampler thread snapshots every slot at
//! a fixed period, accumulating weighted collapsed stacks. The result
//! exports as folded-flamegraph text and speedscope JSON
//! ([`super::profile`]) and yields per-kernel self/total time for the
//! measured-vs-model roofline check ([`super::roofline`]).
//!
//! ## The slot protocol
//!
//! [`SpanSlot`] is a seqlock specialized to the ring's publication
//! discipline: the owning thread is the only writer, so a push/pop is a
//! handful of plain atomic stores bracketed by a sequence counter; the
//! sampler validates its snapshot by re-reading the sequence and
//! retries (boundedly) on a torn read. As in the span ring, names are
//! stored as raw `&'static str` parts in atomics and only reconstructed
//! from snapshots the validation proved consistent. The protocol is
//! written against the `fun3d_check` shim atomics and model-checked
//! under `--cfg fun3d_check` (see `crates/util/tests/model_sampler_slot.rs`).

// Shim atomics: std atomics in normal builds; the model checker's
// tracked types under `--cfg fun3d_check`, which is what lets the
// exhaustive schedule search drive this exact seqlock.
use fun3d_check::shim::{spin_hint, AtomicU64, Ordering};

use std::collections::HashMap;
use std::sync::atomic::AtomicBool as StdAtomicBool;
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::Arc;
use std::time::Duration;

/// Deepest span nesting the slot publishes; deeper frames are counted
/// (so pops stay balanced) but not sampled, and the profile reports how
/// many samples were truncated.
pub const MAX_SAMPLED_DEPTH: usize = 16;

/// Snapshot attempts before the sampler gives up on a slot for this
/// tick (the writer was mid-update every time). Misses are counted, not
/// silently dropped.
const MAX_READ_ATTEMPTS: usize = 64;

/// Frame name used for a thread observed with no open span.
pub const IDLE_FRAME: &str = "(idle)";

/// One thread's continuously-published open-span path: a fixed-depth
/// stack of `&'static str` parts guarded by a sequence counter.
///
/// Single-writer seqlock: [`SpanSlot::push`] / [`SpanSlot::pop`] may
/// only be called by the owning thread; [`SpanSlot::try_read`] may be
/// called from any thread at any time.
pub struct SpanSlot {
    /// Sequence counter: odd while the writer is inside an update. The
    /// writer is the only mutator, so it loads this with `Relaxed` and
    /// bumps it around every update.
    seq: AtomicU64,
    /// Current open-span depth (may exceed [`MAX_SAMPLED_DEPTH`]).
    depth: AtomicU64,
    /// `[name_ptr, name_len]` per sampled frame.
    frames: [[AtomicU64; 2]; MAX_SAMPLED_DEPTH],
}

impl Default for SpanSlot {
    fn default() -> SpanSlot {
        SpanSlot::new()
    }
}

impl SpanSlot {
    /// An empty slot (no open spans).
    pub fn new() -> SpanSlot {
        SpanSlot {
            seq: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            frames: std::array::from_fn(|_| [AtomicU64::new(0), AtomicU64::new(0)]),
        }
    }

    /// Current published depth (test/diagnostic aid; racy by nature).
    pub fn depth(&self) -> u64 {
        // Acquire: pairs with the writer's Release stores so a quiescent
        // reader sees the latest completed update.
        self.depth.load(Ordering::Acquire)
    }

    /// Owner thread: publishes one more open frame.
    pub fn push(&self, name: &'static str) {
        // Relaxed: this thread is the only writer of `seq`.
        let s = self.seq.load(Ordering::Relaxed);
        // Release (begin, seq becomes odd): readers that observe this
        // value retry, and readers that validate across it fail. (The
        // publication edge itself is the *end* store below — this one
        // marks the update in progress.)
        self.seq.store(s + 1, Ordering::Release);
        // Relaxed: single-writer, `depth` was last written by us.
        let d = self.depth.load(Ordering::Relaxed);
        if (d as usize) < MAX_SAMPLED_DEPTH {
            let f = &self.frames[d as usize];
            // Relaxed payload: unpublished until the end-of-update seq
            // store below — the same discipline as `SpanRing::push`,
            // where the slot words are Relaxed and the head store
            // carries the publication edge.
            f[0].store(name.as_ptr() as u64, Ordering::Relaxed);
            f[1].store(name.len() as u64, Ordering::Relaxed);
        }
        // Relaxed: `depth` is payload, published by the seq store below.
        self.depth.store(d + 1, Ordering::Relaxed);
        // Release (end, seq even again): THE publication edge. Pairs
        // with the reader's Acquire load of `seq`: a reader whose first
        // read observes this value synchronizes with every payload
        // store above, so its validated snapshot is a matched
        // (ptr, len) pair. Downgrading this store to Relaxed is the
        // mutant `model_sampler_slot.rs` proves the checker catches.
        self.seq.store(s + 2, Ordering::Release);
    }

    /// Owner thread: retires the innermost open frame.
    pub fn pop(&self) {
        // Relaxed: single-writer (see `push`).
        let s = self.seq.load(Ordering::Relaxed);
        // Release (begin): see `push`.
        self.seq.store(s + 1, Ordering::Release);
        // Relaxed: single-writer read of our own last store.
        let d = self.depth.load(Ordering::Relaxed);
        // Relaxed: `depth` is payload (see `push`). The frame words can
        // stay stale — readers never look past `depth`.
        self.depth.store(d.saturating_sub(1), Ordering::Relaxed);
        // Release (end): see `push`.
        self.seq.store(s + 2, Ordering::Release);
    }

    /// Any thread: snapshots the open-span path into `out` (cleared
    /// first). Returns `None` when every attempt raced the writer —
    /// the caller should count a missed sample, never spin forever.
    ///
    /// On success, `out` holds the path outermost-first, truncated to
    /// [`MAX_SAMPLED_DEPTH`]; the second return reports the *published*
    /// depth so callers can count truncation.
    pub fn try_read(&self, out: &mut Vec<&'static str>) -> Option<u64> {
        out.clear();
        for _ in 0..MAX_READ_ATTEMPTS {
            // Acquire: pairs with the writer's end-of-update Release.
            // Observing an even seq value synchronizes with the update
            // that stored it, so every payload word of that update (and
            // all older ones) is visible to the Relaxed loads below —
            // the same edge `SpanRing::collect` takes through `head`.
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                spin_hint();
                continue;
            }
            // Relaxed payload: consistent as of the s1 synchronization;
            // anything newer the loads might catch comes from an update
            // whose bracketing seq stores make the validation below
            // fail (seq is monotonic, so any interleaved writer
            // activity changes it).
            let d = self.depth.load(Ordering::Relaxed);
            let shown = (d as usize).min(MAX_SAMPLED_DEPTH);
            let mut raw = [[0u64; 2]; MAX_SAMPLED_DEPTH];
            for (i, pair) in raw.iter_mut().enumerate().take(shown) {
                pair[0] = self.frames[i][0].load(Ordering::Relaxed);
                pair[1] = self.frames[i][1].load(Ordering::Relaxed);
            }
            // Acquire: the validating re-read — equal to s1 only when no
            // writer update overlapped the payload copy.
            let s2 = self.seq.load(Ordering::Acquire);
            if s2 != s1 {
                spin_hint();
                continue;
            }
            for pair in raw.iter().take(shown) {
                // SAFETY: the seq validation proved no writer update
                // overlapped the copy, and every store to these words is
                // a matched (ptr, len) pair from a real `&'static str`
                // in a completed `push`, ordered before our loads by the
                // Release/Acquire pairs above — so reconstructing the
                // str is sound, exactly as in `ring::SpanRing::collect`.
                out.push(unsafe {
                    std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                        pair[0] as *const u8,
                        pair[1] as usize,
                    ))
                });
            }
            return Some(d);
        }
        None
    }
}

/// One collapsed stack observed by the sampler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StackCount {
    /// Label of the thread the samples were taken on.
    pub thread: String,
    /// Span names, outermost first. `[IDLE_FRAME]` for an idle thread.
    pub frames: Vec<&'static str>,
    /// Number of sampler ticks that observed exactly this path.
    pub samples: u64,
}

/// Per-kernel time attribution derived from the sampled stacks.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelTime {
    /// Span name.
    pub name: &'static str,
    /// Samples with this span innermost × period (time attributed to
    /// the span's own code).
    pub self_ns: u64,
    /// Samples with this span anywhere on the path × period (time in
    /// the span or anything it called).
    pub total_ns: u64,
    /// Samples with this span innermost.
    pub self_samples: u64,
}

/// The sampler's output: weighted collapsed stacks plus bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct SampleProfile {
    /// Sampling period in nanoseconds (the weight of one sample).
    pub period_ns: u64,
    /// Sampler wakeups that took a snapshot.
    pub ticks: u64,
    /// Slot reads abandoned because the writer was mid-update on every
    /// attempt (lost samples, one per thread per affected tick).
    pub missed: u64,
    /// Samples whose published depth exceeded [`MAX_SAMPLED_DEPTH`]
    /// (recorded with the deepest frames cut off).
    pub truncated: u64,
    /// Collapsed stacks, sorted by thread label then path.
    pub stacks: Vec<StackCount>,
}

impl SampleProfile {
    /// Total non-idle samples across all threads.
    pub fn busy_samples(&self) -> u64 {
        self.stacks
            .iter()
            .filter(|s| s.frames != [IDLE_FRAME])
            .map(|s| s.samples)
            .sum()
    }

    /// Per-kernel self/total attribution, busiest self-time first.
    /// Idle pseudo-frames are excluded; a span appearing twice on one
    /// path (recursion) is counted once toward its total.
    pub fn kernel_times(&self) -> Vec<KernelTime> {
        fn entry(acc: &mut Vec<KernelTime>, name: &'static str) -> usize {
            match acc.iter().position(|k| k.name == name) {
                Some(i) => i,
                None => {
                    acc.push(KernelTime {
                        name,
                        self_ns: 0,
                        total_ns: 0,
                        self_samples: 0,
                    });
                    acc.len() - 1
                }
            }
        }
        let mut acc: Vec<KernelTime> = Vec::new();
        for s in &self.stacks {
            if s.frames.is_empty() || s.frames == [IDLE_FRAME] {
                continue;
            }
            let w = s.samples * self.period_ns;
            let leaf = *s.frames.last().unwrap();
            let i = entry(&mut acc, leaf);
            acc[i].self_ns += w;
            acc[i].self_samples += s.samples;
            let mut seen: Vec<&'static str> = Vec::with_capacity(s.frames.len());
            for f in &s.frames {
                if !seen.contains(f) {
                    seen.push(f);
                    let i = entry(&mut acc, f);
                    acc[i].total_ns += w;
                }
            }
        }
        acc.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
        acc
    }

    /// Self-time seconds attributed to `name` (0 when never sampled).
    pub fn self_seconds(&self, name: &str) -> f64 {
        self.kernel_times()
            .iter()
            .find(|k| k.name == name)
            .map_or(0.0, |k| k.self_ns as f64 * 1e-9)
    }

    /// Total-time seconds attributed to `name` (self plus callees).
    pub fn total_seconds(&self, name: &str) -> f64 {
        self.kernel_times()
            .iter()
            .find(|k| k.name == name)
            .map_or(0.0, |k| k.total_ns as f64 * 1e-9)
    }
}

/// Default sampling period: `FUN3D_SAMPLER_US` microseconds, else 250µs
/// (4 kHz — coarse enough to stay invisible, fine enough that even the
/// tiny-mesh verify run lands hundreds of samples).
pub fn period_from_env() -> Duration {
    let us = std::env::var("FUN3D_SAMPLER_US")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(250)
        .clamp(50, 1_000_000);
    Duration::from_micros(us)
}

/// A running background sampler. Created by [`Sampler::start`]; stopped
/// (and its profile collected) by [`Sampler::stop`]. Dropping without
/// stopping shuts the thread down and discards the profile.
pub struct Sampler {
    stop: Arc<StdAtomicBool>,
    handle: Option<std::thread::JoinHandle<SampleProfile>>,
}

impl Sampler {
    /// Spawns the sampler thread snapshotting every registered thread's
    /// span slot at `period`. The period is clamped to [50µs, 100ms] so
    /// shutdown latency stays bounded.
    pub fn start(period: Duration) -> Sampler {
        let period = period.clamp(Duration::from_micros(50), Duration::from_millis(100));
        let stop = Arc::new(StdAtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fun3d-sampler".to_string())
            .spawn(move || sampler_loop(&stop2, period))
            .expect("spawn sampler thread");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler and returns the accumulated profile. Blocks at
    /// most ~one period plus one snapshot.
    pub fn stop(mut self) -> SampleProfile {
        self.stop.store(true, StdOrdering::Release);
        self.handle
            .take()
            .expect("sampler already stopped")
            .join()
            .unwrap_or_default()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            self.stop.store(true, StdOrdering::Release);
            let _ = h.join();
        }
    }
}

fn sampler_loop(stop: &StdAtomicBool, period: Duration) -> SampleProfile {
    let period_ns = period.as_nanos() as u64;
    let mut counts: HashMap<(String, Vec<&'static str>), u64> = HashMap::new();
    let mut ticks = 0u64;
    let mut missed = 0u64;
    let mut truncated = 0u64;
    let mut path: Vec<&'static str> = Vec::with_capacity(MAX_SAMPLED_DEPTH);
    while !stop.load(StdOrdering::Acquire) {
        std::thread::sleep(period);
        ticks += 1;
        // Snapshot every registered thread cell. Holding the registry
        // lock during the sweep is fine: recording threads only take it
        // on first-ever span, never in steady state.
        let cells = super::registry().lock().unwrap_or_else(|p| p.into_inner());
        for cell in cells.iter() {
            match cell.slot.try_read(&mut path) {
                None => missed += 1,
                Some(depth) => {
                    if depth as usize > MAX_SAMPLED_DEPTH {
                        truncated += 1;
                    }
                    let frames: Vec<&'static str> = if path.is_empty() {
                        vec![IDLE_FRAME]
                    } else {
                        path.clone()
                    };
                    let label = cell.label.lock().unwrap_or_else(|p| p.into_inner()).clone();
                    *counts.entry((label, frames)).or_insert(0) += 1;
                }
            }
        }
        drop(cells);
    }
    let mut stacks: Vec<StackCount> = counts
        .into_iter()
        .map(|((thread, frames), samples)| StackCount {
            thread,
            frames,
            samples,
        })
        .collect();
    stacks.sort_by(|a, b| a.thread.cmp(&b.thread).then(a.frames.cmp(&b.frames)));
    SampleProfile {
        period_ns,
        ticks,
        missed,
        truncated,
        stacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_push_pop_roundtrip() {
        let slot = SpanSlot::new();
        let mut out = Vec::new();
        assert_eq!(slot.try_read(&mut out), Some(0));
        assert!(out.is_empty());
        slot.push("flux");
        slot.push("pool.chunk");
        assert_eq!(slot.try_read(&mut out), Some(2));
        assert_eq!(out, vec!["flux", "pool.chunk"]);
        slot.pop();
        assert_eq!(slot.try_read(&mut out), Some(1));
        assert_eq!(out, vec!["flux"]);
        slot.pop();
        assert_eq!(slot.try_read(&mut out), Some(0));
        assert!(out.is_empty());
        // Unbalanced pop is clamped, not wrapped.
        slot.pop();
        assert_eq!(slot.depth(), 0);
    }

    #[test]
    fn slot_truncates_past_max_depth_but_stays_balanced() {
        let slot = SpanSlot::new();
        for _ in 0..MAX_SAMPLED_DEPTH + 3 {
            slot.push("deep");
        }
        let mut out = Vec::new();
        let depth = slot.try_read(&mut out).unwrap();
        assert_eq!(depth as usize, MAX_SAMPLED_DEPTH + 3);
        assert_eq!(out.len(), MAX_SAMPLED_DEPTH);
        for _ in 0..MAX_SAMPLED_DEPTH + 3 {
            slot.pop();
        }
        assert_eq!(slot.try_read(&mut out), Some(0));
        assert!(out.is_empty());
    }

    #[test]
    fn concurrent_reader_sees_only_legal_prefixes() {
        // Stress analogue of the exhaustive model in
        // tests/model_sampler_slot.rs: the reader must only ever observe
        // a prefix of the writer's current nesting.
        use std::sync::atomic::AtomicBool;
        let slot = Arc::new(SpanSlot::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(StdOrdering::Relaxed) {
                    slot.push("outer");
                    slot.push("mid");
                    slot.push("inner");
                    slot.pop();
                    slot.pop();
                    slot.pop();
                }
            })
        };
        let legal: [&[&str]; 4] = [&[], &["outer"], &["outer", "mid"], &["outer", "mid", "inner"]];
        let mut out = Vec::new();
        let mut seen_nonempty = false;
        // On a single hardware thread the writer may not be scheduled at
        // all during a fixed read count, so read until we land inside
        // the nest (yielding lets the writer run) with a wall deadline
        // as the failure backstop.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut reads = 0u64;
        while reads < 20_000 || (!seen_nonempty && std::time::Instant::now() < deadline) {
            if slot.try_read(&mut out).is_some() {
                assert!(
                    legal.contains(&out.as_slice()),
                    "illegal sampled path: {out:?}"
                );
                seen_nonempty |= !out.is_empty();
            }
            reads += 1;
            if reads % 512 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, StdOrdering::Relaxed);
        writer.join().unwrap();
        assert!(seen_nonempty, "reader never saw an open span");
    }

    #[test]
    fn profile_attribution_self_vs_total() {
        let p = SampleProfile {
            period_ns: 1_000,
            ticks: 10,
            missed: 0,
            truncated: 0,
            stacks: vec![
                StackCount {
                    thread: "w0".into(),
                    frames: vec!["gmres", "trsv"],
                    samples: 6,
                },
                StackCount {
                    thread: "w0".into(),
                    frames: vec!["gmres"],
                    samples: 3,
                },
                StackCount {
                    thread: "w0".into(),
                    frames: vec![IDLE_FRAME],
                    samples: 1,
                },
            ],
        };
        assert_eq!(p.busy_samples(), 9);
        let times = p.kernel_times();
        assert_eq!(times[0].name, "trsv"); // busiest self time first
        assert_eq!(times[0].self_ns, 6_000);
        assert_eq!(times[0].total_ns, 6_000);
        let gmres = times.iter().find(|k| k.name == "gmres").unwrap();
        assert_eq!(gmres.self_ns, 3_000);
        assert_eq!(gmres.total_ns, 9_000);
        assert!((p.self_seconds("trsv") - 6e-6).abs() < 1e-15);
        assert!((p.total_seconds("gmres") - 9e-6).abs() < 1e-15);
        assert_eq!(p.self_seconds("flux"), 0.0);
    }

    #[test]
    fn recursion_counts_total_once() {
        let p = SampleProfile {
            period_ns: 100,
            ticks: 1,
            missed: 0,
            truncated: 0,
            stacks: vec![StackCount {
                thread: "t".into(),
                frames: vec!["a", "b", "a"],
                samples: 2,
            }],
        };
        let a = p.kernel_times().into_iter().find(|k| k.name == "a").unwrap();
        assert_eq!(a.total_ns, 200, "recursive frame counted once per sample");
        assert_eq!(a.self_ns, 200, "leaf occurrence still accrues self");
    }

    #[test]
    fn sampler_start_stop_is_clean_and_counts_ticks() {
        let s = Sampler::start(Duration::from_micros(200));
        std::thread::sleep(Duration::from_millis(20));
        let p = s.stop();
        assert!(p.ticks > 0, "sampler never woke");
        assert_eq!(p.period_ns, 200_000);
    }

    #[test]
    fn period_from_env_default_and_clamp() {
        // Not set in the test environment unless the user exports it;
        // accept any in-range value but require the clamp bounds.
        let p = period_from_env();
        assert!(p >= Duration::from_micros(50) && p <= Duration::from_secs(1));
    }
}
