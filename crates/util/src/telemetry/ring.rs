//! A single-writer ring buffer of span events.
//!
//! Each worker thread owns one ring and is its only writer, so a push is
//! four relaxed atomic stores plus one release store of the head — no
//! locks, no CAS loops, no allocation. A collector thread may read
//! concurrently: it snapshots the head, copies the slots, re-reads the
//! head and discards any slot the writer could have been overwriting in
//! the meantime (the slot of index `i` is reused by index `i + capacity`,
//! so after observing head `h` every index `> h - capacity` is stable).
//! The ring keeps the **newest** events on wraparound; the number of
//! overwritten (dropped) events is reported alongside.
//!
//! Slots store the span name as raw `&'static str` parts (pointer and
//! length) in atomics, which makes concurrent slot reads well-defined;
//! the name is only reconstructed for indices proven stable above, so a
//! mixed-up pointer/length pair can never escape.

// Shim atomics: std atomics in normal builds; under `--cfg fun3d_check`
// these are the model checker's tracked atomics, so the seqlock-style
// publication protocol below is exercised by fun3d-check's schedule
// exploration (see crates/util/tests/model_ring.rs).
use fun3d_check::shim::{AtomicU64, Ordering};

/// One completed span: a named interval on one thread's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Interned static name (the instrumentation site's label).
    pub name: &'static str,
    /// Start, nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// `[name_ptr, name_len, start_ns, dur_ns]`
type Slot = [AtomicU64; 4];

/// Fixed-capacity single-writer ring of [`SpanEvent`]s.
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Total events ever pushed (monotonic; slot index = `head % cap`).
    head: AtomicU64,
}

impl SpanRing {
    /// A ring holding up to `capacity` events (min 2; newest win).
    pub fn new(capacity: usize) -> SpanRing {
        let capacity = capacity.max(2);
        let slots = (0..capacity)
            .map(|_| {
                [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ]
            })
            .collect();
        SpanRing {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events pushed over the ring's lifetime.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Appends an event. Must only be called from the ring's owning
    /// thread (single-writer invariant; see the module docs).
    pub fn push(&self, ev: SpanEvent) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        slot[0].store(ev.name.as_ptr() as u64, Ordering::Relaxed);
        slot[1].store(ev.name.len() as u64, Ordering::Relaxed);
        slot[2].store(ev.start_ns, Ordering::Relaxed);
        slot[3].store(ev.dur_ns, Ordering::Relaxed);
        // Publish: a collector that acquires `h + 1` sees the slot stores.
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copies out the stable events, oldest first, plus the count of
    /// events lost to wraparound (or trimmed as potentially in-flight).
    pub fn collect(&self) -> (Vec<SpanEvent>, u64) {
        let cap = self.slots.len() as u64;
        let h1 = self.head.load(Ordering::Acquire);
        let lo = h1.saturating_sub(cap);
        let mut raw: Vec<(u64, [u64; 4])> = Vec::with_capacity((h1 - lo) as usize);
        for i in lo..h1 {
            let slot = &self.slots[(i % cap) as usize];
            raw.push((
                i,
                [
                    slot[0].load(Ordering::Relaxed),
                    slot[1].load(Ordering::Relaxed),
                    slot[2].load(Ordering::Relaxed),
                    slot[3].load(Ordering::Relaxed),
                ],
            ));
        }
        // Any index the writer may have been overwriting during the copy
        // is unstable: index i shares a slot with i + cap, and the writer
        // may already be filling index h2's slot before publishing h2+1.
        let h2 = self.head.load(Ordering::Acquire);
        let stable_from = (h2 + 1).saturating_sub(cap);
        let events: Vec<SpanEvent> = raw
            .into_iter()
            .filter(|(i, _)| *i >= stable_from)
            .map(|(_, [ptr, len, start, dur])| SpanEvent {
                // SAFETY: the index filter above guarantees this slot was
                // completely written (its publishing head store happened
                // before our acquire of h1) and not overwritten since, so
                // ptr/len are a matched pair from a real &'static str.
                name: unsafe {
                    std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                        ptr as *const u8,
                        len as usize,
                    ))
                },
                start_ns: start,
                dur_ns: dur,
            })
            .collect();
        let dropped = h2 - events.len() as u64;
        (events, dropped)
    }

    /// Forgets all recorded events (the slots are simply re-aged out; the
    /// lifetime push count restarts).
    pub fn clear(&self) {
        self.head.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, i: u64) -> SpanEvent {
        SpanEvent {
            name,
            start_ns: i * 10,
            dur_ns: 5,
        }
    }

    #[test]
    fn empty_ring_collects_nothing() {
        let r = SpanRing::new(8);
        let (events, dropped) = r.collect();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn collects_in_push_order_below_capacity() {
        let r = SpanRing::new(8);
        for i in 0..5 {
            r.push(ev("a", i));
        }
        let (events, dropped) = r.collect();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.start_ns, i as u64 * 10);
            assert_eq!(e.name, "a");
        }
    }

    #[test]
    fn wraparound_preserves_newest_events() {
        let cap = 16u64;
        let r = SpanRing::new(cap as usize);
        let total = cap + 7;
        for i in 0..total {
            r.push(ev("k", i));
        }
        let (events, dropped) = r.collect();
        // quiescent collection keeps the cap-1 newest (the very oldest
        // retained slot is conservatively treated as in-flight)
        assert_eq!(events.len() as u64, cap - 1);
        assert_eq!(dropped, total - (cap - 1));
        // newest-first check: the last pushed event must be present …
        assert_eq!(events.last().unwrap().start_ns, (total - 1) * 10);
        // … and the sequence is contiguous and ordered
        for w in events.windows(2) {
            assert_eq!(w[1].start_ns - w[0].start_ns, 10);
        }
    }

    #[test]
    fn clear_resets() {
        let r = SpanRing::new(4);
        for i in 0..10 {
            r.push(ev("x", i));
        }
        r.clear();
        let (events, dropped) = r.collect();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
        assert_eq!(r.pushed(), 0);
    }

    #[test]
    fn distinct_names_survive() {
        let r = SpanRing::new(8);
        r.push(ev("flux", 0));
        r.push(ev("gradient", 1));
        let (events, _) = r.collect();
        assert_eq!(events[0].name, "flux");
        assert_eq!(events[1].name, "gradient");
    }

    #[test]
    fn concurrent_reader_never_sees_torn_names() {
        // Hammer the ring from one writer while a reader collects: every
        // surfaced name must be one of the legal labels.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(32));
        let stop = Arc::new(AtomicBool::new(false));
        let names: [&'static str; 3] = ["alpha", "beta-long-name", "g"];
        let writer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    ring.push(ev(names[(i % 3) as usize], i));
                    i += 1;
                }
            })
        };
        for _ in 0..200 {
            let (events, _) = ring.collect();
            for e in events {
                assert!(names.contains(&e.name), "torn name: {:?}", e.name);
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
