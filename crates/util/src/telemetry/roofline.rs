//! Measured-vs-model roofline validation.
//!
//! The paper's Table 2 / Fig. 5 argument is a consistency check: each
//! kernel's analytic traffic model (bytes, flops — [`KernelCounts`])
//! divided by its measured wall time must land near the machine
//! envelope (STREAM bandwidth for memory-bound kernels, peak flops for
//! compute-bound ones). A kernel far *below* the roofline is losing to
//! something the model doesn't capture (latency, imbalance, false
//! sharing); a kernel far *above* it means the compulsory-traffic model
//! overcounts (cache residency). This module automates that reading:
//! [`validate`] joins per-kernel seconds with the analytic counts and
//! flags deviations beyond a tolerance band.
//!
//! The tolerance is deliberately a band, not a bound — on the tiny
//! verification meshes everything is cache-resident, so `Fast` flags
//! are expected and informational; `Slow` flags are the actionable
//! ones. `FUN3D_ROOFLINE_TOL` overrides the default factor.

use super::counters::KernelCounts;

/// The machine envelope the model is checked against (a flattened view
/// of `fun3d_machine::MachineSpec` — this crate sits below `machine` in
/// the dependency order, so callers pass the two numbers in).
#[derive(Clone, Copy, Debug)]
pub struct Envelope {
    /// Sustainable memory bandwidth, GB/s (STREAM).
    pub stream_gbs: f64,
    /// Peak double-precision Gflop/s.
    pub peak_gflops: f64,
}

impl Envelope {
    /// Ridge point of the roofline: the arithmetic intensity (flop/byte)
    /// above which a kernel is compute-bound on this machine.
    pub fn ridge_flops_per_byte(&self) -> f64 {
        if self.stream_gbs <= 0.0 {
            return f64::INFINITY;
        }
        self.peak_gflops / self.stream_gbs
    }
}

/// Which side of the ridge the kernel's intensity puts it on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// Intensity below the ridge: the bandwidth roof applies.
    Memory,
    /// Intensity at/above the ridge: the flop roof applies.
    Compute,
}

impl Bound {
    /// Short display form (`mem` / `flop`).
    pub fn label(&self) -> &'static str {
        match self {
            Bound::Memory => "mem",
            Bound::Compute => "flop",
        }
    }
}

/// A flagged deviation from the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deviation {
    /// Measured more than `tolerance`× slower than the model floor —
    /// the kernel is losing to something the traffic model doesn't see.
    Slow,
    /// Measured more than `tolerance`× faster than the model floor —
    /// the compulsory-traffic model overcounts (cache residency).
    Fast,
}

/// One kernel's measured-vs-model comparison.
#[derive(Clone, Debug)]
pub struct RooflineRow {
    /// Kernel name.
    pub name: String,
    /// Measured seconds attributed to the kernel.
    pub seconds: f64,
    /// Analytic counts the model side is computed from.
    pub counts: KernelCounts,
    /// Which roof applies at this kernel's intensity.
    pub bound: Bound,
    /// Model floor: the fastest the kernel could run if it hit the
    /// applicable roof exactly, `max(bytes/STREAM, flops/peak)`.
    pub model_seconds: f64,
    /// `seconds / model_seconds` (1.0 = exactly on the roofline,
    /// >1 slower than the model, <1 faster).
    pub ratio: f64,
    /// Achieved bandwidth, GB/s.
    pub achieved_gbs: f64,
    /// Achieved flop rate, Gflop/s.
    pub achieved_gflops: f64,
    /// Deviation beyond the tolerance band, if any.
    pub deviation: Option<Deviation>,
}

/// Default tolerance factor: a kernel may run up to 4× off its model
/// floor in either direction before it is flagged. Wide on purpose —
/// the meshes the gate runs on fit in cache.
pub const DEFAULT_TOLERANCE: f64 = 4.0;

/// Tolerance factor from `FUN3D_ROOFLINE_TOL`, else `default`.
pub fn tolerance_from_env(default: f64) -> f64 {
    std::env::var("FUN3D_ROOFLINE_TOL")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 1.0)
        .unwrap_or(default)
}

/// Joins measured per-kernel seconds with the analytic model and the
/// machine envelope. Kernels with no modeled traffic/flops (pure
/// bookkeeping counters) or no measured time are skipped — there is
/// nothing to compare.
pub fn validate(
    kernels: &[(&str, f64, KernelCounts)],
    env: &Envelope,
    tolerance: f64,
) -> Vec<RooflineRow> {
    assert!(tolerance >= 1.0, "tolerance is a factor >= 1");
    let mut rows = Vec::new();
    for &(name, seconds, counts) in kernels {
        let bytes = counts.bytes() as f64;
        let flops = counts.flops as f64;
        if (bytes <= 0.0 && flops <= 0.0) || seconds <= 0.0 {
            continue;
        }
        let mem_floor = if env.stream_gbs > 0.0 {
            bytes / (env.stream_gbs * 1e9)
        } else {
            0.0
        };
        let flop_floor = if env.peak_gflops > 0.0 {
            flops / (env.peak_gflops * 1e9)
        } else {
            0.0
        };
        let (bound, model_seconds) = if mem_floor >= flop_floor {
            (Bound::Memory, mem_floor)
        } else {
            (Bound::Compute, flop_floor)
        };
        if model_seconds <= 0.0 {
            continue;
        }
        let ratio = seconds / model_seconds;
        let deviation = if ratio > tolerance {
            Some(Deviation::Slow)
        } else if ratio < 1.0 / tolerance {
            Some(Deviation::Fast)
        } else {
            None
        };
        rows.push(RooflineRow {
            name: name.to_string(),
            seconds,
            counts,
            bound,
            model_seconds,
            ratio,
            achieved_gbs: counts.achieved_gbs(seconds),
            achieved_gflops: counts.achieved_gflops(seconds),
            deviation,
        });
    }
    // Most model-relevant (largest modeled time) first.
    rows.sort_by(|a, b| b.model_seconds.total_cmp(&a.model_seconds));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Envelope {
        // Round numbers: 40 GB/s STREAM, 200 Gflop/s peak → ridge at
        // 5 flop/byte.
        Envelope {
            stream_gbs: 40.0,
            peak_gflops: 200.0,
        }
    }

    #[test]
    fn ridge_point() {
        assert!((env().ridge_flops_per_byte() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_kernel_on_the_roof_is_unflagged() {
        // 4 GB moved, 1 Gflop → intensity 0.25, memory bound; model
        // floor 0.1 s at 40 GB/s. Measured exactly on the floor.
        let c = KernelCounts::once(1, 3_000_000_000, 1_000_000_000, 1_000_000_000);
        let rows = validate(&[("flux", 0.1, c)], &env(), 4.0);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.bound, Bound::Memory);
        assert!((r.model_seconds - 0.1).abs() < 1e-12);
        assert!((r.ratio - 1.0).abs() < 1e-12);
        assert!((r.achieved_gbs - 40.0).abs() < 1e-9);
        assert_eq!(r.deviation, None);
    }

    #[test]
    fn compute_bound_classification() {
        // 1 MB moved, 100 Gflop → intensity ≫ ridge → compute bound,
        // floor 0.5 s at 200 Gflop/s.
        let c = KernelCounts::once(1, 1_000_000, 0, 100_000_000_000);
        let rows = validate(&[("dense", 0.5, c)], &env(), 4.0);
        assert_eq!(rows[0].bound, Bound::Compute);
        assert!((rows[0].model_seconds - 0.5).abs() < 1e-12);
        assert_eq!(rows[0].deviation, None);
    }

    #[test]
    fn slow_and_fast_deviations_flagged() {
        let c = KernelCounts::once(1, 4_000_000_000, 0, 0); // floor 0.1 s
        let rows = validate(
            &[("slow", 0.5, c), ("fast", 0.01, c), ("ok", 0.2, c)],
            &env(),
            4.0,
        );
        let find = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(find("slow").deviation, Some(Deviation::Slow));
        assert_eq!(find("fast").deviation, Some(Deviation::Fast));
        assert_eq!(find("ok").deviation, None);
    }

    #[test]
    fn bookkeeping_counters_and_zero_time_are_skipped() {
        let none = KernelCounts::once(5, 0, 0, 0); // e.g. pool.launch
        let real = KernelCounts::once(1, 1_000_000, 0, 1_000);
        let rows = validate(
            &[("pool.launch", 1.0, none), ("unmeasured", 0.0, real)],
            &env(),
            4.0,
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn rows_sorted_by_model_weight() {
        let big = KernelCounts::once(1, 8_000_000_000, 0, 0);
        let small = KernelCounts::once(1, 4_000_000, 0, 0);
        let rows = validate(&[("small", 0.1, small), ("big", 0.3, big)], &env(), 100.0);
        assert_eq!(rows[0].name, "big");
    }

    #[test]
    fn tolerance_env_parse_guards() {
        // Whatever the environment holds, the result is a sane factor.
        let t = tolerance_from_env(4.0);
        assert!(t >= 1.0 && t.is_finite());
    }

    #[test]
    fn bound_labels() {
        assert_eq!(Bound::Memory.label(), "mem");
        assert_eq!(Bound::Compute.label(), "flop");
    }
}
