//! Black-box flight recorder: an always-on, fixed-capacity, lock-free
//! per-thread ring of **structured solver events**, plus anomaly-triggered
//! dumps of the merged, time-ordered record.
//!
//! Where spans ([`super::ring`]) answer "where did the time go", the
//! flight log answers "what did the solver *decide* and *observe*": solve
//! start/end with a [`SolveId`], per-step residual/Δt, which execution
//! scheme each GMRES solve actually ran, the `AutoPolicy` decision with
//! its modeled costs, sync-probe calibrations, region/barrier summaries,
//! and per-rank comm traffic. Events are compact (`10 × u64` slots, enum
//! payloads, no allocation on the hot path) and the recorder is on by
//! default — the point is that the record already exists when something
//! goes wrong, like an aircraft's flight data recorder.
//!
//! ## Publication protocol
//!
//! Each thread owns one [`FlightRing`] and is its only writer; a push is
//! ten relaxed stores plus one release store of the head — the same
//! single-writer seqlock-style discipline as the span ring, model-checked
//! under `--cfg fun3d_check` (see `crates/util/tests/model_flight_ring.rs`).
//! Unlike the span ring the payload words are plain integers (kind codes,
//! bit-cast `f64`s), so a collector can never reconstruct anything unsafe
//! from a torn slot; the stability filter still guarantees only fully
//! published, unrecycled slots surface.
//!
//! ## Dumps
//!
//! [`dump`] snapshots every ring, merges the events into one time-ordered
//! timeline tagged `(rank, SolveId)` — `fun3d_cluster` ranks are threads
//! of this process sharing the telemetry epoch, so cross-rank ordering is
//! meaningful — and writes a strict [`super::json`] artifact plus a
//! human-readable text rendering. Triggers: a panic inside a pool region
//! ([`note_region_panic`], wired into `ThreadPool::run`), the residual
//! anomaly detector in `fun3d_solver::anomaly` (divergence / stagnation /
//! wall-budget overrun), or an explicit `FUN3D_FLIGHT_DUMP=1` request
//! honoured at solve end. `flight_view` (fun3d-bench) renders a dump.
//!
//! ## Environment
//!
//! * `FUN3D_FLIGHT=off|0` — disable recording (default: on; one relaxed
//!   atomic load per emit when disabled).
//! * `FUN3D_FLIGHT_RING` — per-thread ring capacity in events
//!   (default 4096).
//! * `FUN3D_FLIGHT_DIR` / `FUN3D_FLIGHT_PREFIX` — dump location
//!   (default `target/experiments` / `flight`).
//! * `FUN3D_FLIGHT_DUMP=1` — request a dump at the end of every solve.

use super::json::Json;
use super::now_ns;
// Shim atomics: std in normal builds, fun3d-check's tracked types under
// `--cfg fun3d_check`, so the ring's publication protocol runs beneath
// the deterministic model checker.
use fun3d_check::shim::{AtomicU64, Ordering};
use std::cell::Cell;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering as StdOrdering};
use std::sync::{Arc, Mutex, OnceLock};

/// Payload words per event (beyond kind / time / rank / solve).
pub const PAYLOAD_WORDS: usize = 6;
const SLOT_WORDS: usize = 4 + PAYLOAD_WORDS;

/// Sentinel for "no crossover exists" in [`EventKind::PolicyDecision`].
pub const NO_CROSSOVER: u64 = u64::MAX;

// ---------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------

const STATE_UNSET: u8 = u8::MAX;
static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

#[cold]
fn init_state_from_env() -> bool {
    let on = match std::env::var("FUN3D_FLIGHT") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "none"
        ),
        Err(_) => true, // always-on default
    };
    let _ = STATE.compare_exchange(
        STATE_UNSET,
        on as u8,
        StdOrdering::Relaxed,
        StdOrdering::Relaxed,
    );
    STATE.load(StdOrdering::Relaxed) != 0
}

/// Whether the recorder is capturing events (first call reads
/// `FUN3D_FLIGHT`; afterwards one relaxed load).
#[inline]
pub fn enabled() -> bool {
    let v = STATE.load(StdOrdering::Relaxed);
    if v == STATE_UNSET {
        init_state_from_env()
    } else {
        v != 0
    }
}

/// Overrides the enablement (tools and tests; effective immediately on
/// all threads).
pub fn set_enabled(on: bool) {
    STATE.store(on as u8, StdOrdering::Relaxed);
}

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("FUN3D_FLIGHT_RING")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(4096)
            .clamp(16, 1 << 22)
    })
}

// ---------------------------------------------------------------------
// Event vocabulary
// ---------------------------------------------------------------------

/// Concrete execution scheme recorded on [`EventKind::Gmres`] /
/// [`EventKind::PolicyDecision`] events (a flight-local mirror of
/// `fun3d_solver::ExecMode`, kept here so `fun3d_util` stays at the
/// bottom of the dependency graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecTag {
    /// Single-threaded vector ops.
    Serial,
    /// Region-per-op threading.
    PerOp,
    /// Persistent SPMD regions.
    Team,
}

impl ExecTag {
    /// Canonical name, matching `ExecMode::name()`.
    pub fn name(self) -> &'static str {
        match self {
            ExecTag::Serial => "serial",
            ExecTag::PerOp => "per-op",
            ExecTag::Team => "team",
        }
    }

    /// Parses the canonical names (the form `GmresResult::exec` carries).
    pub fn parse(s: &str) -> Option<ExecTag> {
        match s {
            "serial" => Some(ExecTag::Serial),
            "per-op" => Some(ExecTag::PerOp),
            "team" => Some(ExecTag::Team),
            _ => None,
        }
    }

    fn code(self) -> u64 {
        match self {
            ExecTag::Serial => 0,
            ExecTag::PerOp => 1,
            ExecTag::Team => 2,
        }
    }

    fn from_code(c: u64) -> Option<ExecTag> {
        match c {
            0 => Some(ExecTag::Serial),
            1 => Some(ExecTag::PerOp),
            2 => Some(ExecTag::Team),
            _ => None,
        }
    }
}

/// What forced (or requested) a flight dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// A worker panicked inside a `ThreadPool` region.
    RegionPanic,
    /// Residual blow-up or NaN/Inf detected by the anomaly detector.
    Divergence,
    /// Residual stalled over the detector's window.
    Stagnation,
    /// The solve exceeded its wall-clock budget.
    WallBudget,
    /// Explicit `FUN3D_FLIGHT_DUMP` request.
    Request,
}

impl Trigger {
    /// Stable artifact slug (also the dump file stem suffix).
    pub fn slug(self) -> &'static str {
        match self {
            Trigger::RegionPanic => "region_panic",
            Trigger::Divergence => "divergence",
            Trigger::Stagnation => "stagnation",
            Trigger::WallBudget => "wall_budget",
            Trigger::Request => "request",
        }
    }

    /// Parses a slug back (dump validation).
    pub fn parse(s: &str) -> Option<Trigger> {
        match s {
            "region_panic" => Some(Trigger::RegionPanic),
            "divergence" => Some(Trigger::Divergence),
            "stagnation" => Some(Trigger::Stagnation),
            "wall_budget" => Some(Trigger::WallBudget),
            "request" => Some(Trigger::Request),
            _ => None,
        }
    }

    fn code(self) -> u64 {
        match self {
            Trigger::RegionPanic => 0,
            Trigger::Divergence => 1,
            Trigger::Stagnation => 2,
            Trigger::WallBudget => 3,
            Trigger::Request => 4,
        }
    }

    fn from_code(c: u64) -> Option<Trigger> {
        match c {
            0 => Some(Trigger::RegionPanic),
            1 => Some(Trigger::Divergence),
            2 => Some(Trigger::Stagnation),
            3 => Some(Trigger::WallBudget),
            4 => Some(Trigger::Request),
            _ => None,
        }
    }
}

/// One structured solver event. Every variant encodes into six `u64`
/// payload words (floats bit-cast), so recording is allocation-free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A ΨTC solve began.
    SolveStart {
        /// Scalar unknowns.
        unknowns: u64,
        /// Solver pool workers (1 = serial).
        threads: u64,
    },
    /// The solve finished (converged, hit max steps, or bailed).
    SolveEnd {
        /// Tolerance met.
        converged: bool,
        /// Pseudo-time steps taken.
        steps: u64,
        /// Total linear iterations.
        linear_iters: u64,
        /// Final residual norm.
        res: f64,
    },
    /// One pseudo-time step completed.
    PtcStep {
        /// 1-based step index.
        step: u64,
        /// ‖f(u)‖ after the step.
        res: f64,
        /// SER pseudo-time step used.
        dt: f64,
        /// Linear iterations this step.
        gmres_iters: u64,
    },
    /// One linear solve completed, with the scheme that actually ran.
    Gmres {
        /// Executed scheme (Auto resolved).
        exec: ExecTag,
        /// Matrix applications.
        iterations: u64,
        /// Final preconditioned residual.
        residual: f64,
        /// Global reduction rounds.
        reductions: u64,
    },
    /// The adaptive policy resolved `Auto` to a concrete scheme.
    PolicyDecision {
        /// Chosen scheme.
        chosen: ExecTag,
        /// Problem size the decision was made for.
        unknowns: u64,
        /// Pool workers offered.
        nt: u64,
        /// Modeled serial iteration seconds.
        serial_s: f64,
        /// Modeled best-parallel iteration seconds (work + sync).
        parallel_s: f64,
        /// Modeled crossover size, or [`NO_CROSSOVER`].
        crossover: u64,
    },
    /// A sync-cost calibration probe ran (cache miss in the policy).
    SyncProbe {
        /// Pool workers measured.
        pool_size: u64,
        /// Measured empty-region launch cost, seconds.
        region_launch_s: f64,
        /// Measured barrier phase cost, seconds.
        barrier_phase_s: f64,
    },
    /// A worker panicked inside a pool region (recorded by the launcher).
    RegionPanic {
        /// Pool workers.
        pool_size: u64,
    },
    /// Region/barrier totals over one solve (launch *summaries*, not
    /// per-launch events — regions are too frequent to log individually).
    RegionSummary {
        /// Pool regions launched during the solve.
        regions: u64,
        /// Barrier phases crossed during the solve.
        barriers: u64,
    },
    /// A cluster rank sent a point-to-point message.
    CommSend {
        /// Destination rank.
        peer: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A cluster rank received a point-to-point message.
    CommRecv {
        /// Source rank.
        peer: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// The anomaly detector fired.
    Anomaly {
        /// What it detected.
        trigger: Trigger,
        /// Step at which it fired.
        step: u64,
        /// Offending value (residual norm, or elapsed seconds for a
        /// wall-budget overrun).
        value: f64,
    },
    /// The serve front-end admitted a request into a tenant queue.
    ServeAdmit {
        /// FNV-64 hash of the tenant name (the full name lives in the
        /// request log; six u64 words can't carry a string).
        tenant: u64,
        /// Global queue depth *after* admission.
        queue_depth: u64,
    },
    /// A serve job finished executing (emitted under the job's solve
    /// tag, so the dump ties tenant → `SolveId` → solver events).
    ServeJob {
        /// FNV-64 hash of the tenant name.
        tenant: u64,
        /// Nanoseconds spent queued before a team picked the job up.
        queue_ns: u64,
        /// Artifact-cache hits while preparing this job.
        cache_hits: u64,
        /// Artifact-cache misses while preparing this job.
        cache_misses: u64,
    },
    /// Admission control shed a request.
    ServeReject {
        /// FNV-64 hash of the tenant name.
        tenant: u64,
        /// Structured reason, decoded by [`reject_reason_slug`].
        reason: u64,
        /// Global queue depth at the time of rejection.
        queue_depth: u64,
    },
    /// End-to-end stage boundaries for one serve request (emitted under
    /// the job's solve tag once the reply is written). Timestamps are
    /// nanoseconds on the process telemetry epoch — the same clock as
    /// `t_ns` — so `trace::assemble` can interleave them with solver
    /// events causally.
    ServeStages {
        /// FNV-64 hash of the tenant name.
        tenant: u64,
        /// When admission control accepted the request.
        admit_ns: u64,
        /// When a dispatcher team dequeued it.
        dispatch_ns: u64,
        /// When the solver started (artifact prep done).
        solve_start_ns: u64,
        /// When the solver returned.
        solve_end_ns: u64,
        /// When the reply was handed to the writer.
        reply_ns: u64,
    },
}

/// Human slug for a [`EventKind::ServeReject`] reason code. The codes
/// are fixed here (not in `fun3d-serve`) so flight dumps decode without
/// the serve crate: 1 = global queue full, 2 = tenant queue full,
/// 3 = malformed request, 4 = service shutting down.
pub fn reject_reason_slug(code: u64) -> &'static str {
    match code {
        1 => "queue_full",
        2 => "tenant_queue_full",
        3 => "bad_request",
        4 => "shutdown",
        _ => "other",
    }
}

impl EventKind {
    /// Stable artifact name for this kind.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SolveStart { .. } => "solve_start",
            EventKind::SolveEnd { .. } => "solve_end",
            EventKind::PtcStep { .. } => "ptc_step",
            EventKind::Gmres { .. } => "gmres",
            EventKind::PolicyDecision { .. } => "policy_decision",
            EventKind::SyncProbe { .. } => "sync_probe",
            EventKind::RegionPanic { .. } => "region_panic",
            EventKind::RegionSummary { .. } => "region_summary",
            EventKind::CommSend { .. } => "comm_send",
            EventKind::CommRecv { .. } => "comm_recv",
            EventKind::Anomaly { .. } => "anomaly",
            EventKind::ServeAdmit { .. } => "serve_admit",
            EventKind::ServeJob { .. } => "serve_job",
            EventKind::ServeReject { .. } => "serve_reject",
            EventKind::ServeStages { .. } => "serve_stages",
        }
    }

    /// Every artifact kind name (dump validation).
    pub const NAMES: [&'static str; 15] = [
        "solve_start",
        "solve_end",
        "ptc_step",
        "gmres",
        "policy_decision",
        "sync_probe",
        "region_panic",
        "region_summary",
        "comm_send",
        "comm_recv",
        "anomaly",
        "serve_admit",
        "serve_job",
        "serve_reject",
        "serve_stages",
    ];

    fn encode(&self) -> (u64, [u64; PAYLOAD_WORDS]) {
        let f = f64::to_bits;
        match *self {
            EventKind::SolveStart { unknowns, threads } => (1, [unknowns, threads, 0, 0, 0, 0]),
            EventKind::SolveEnd {
                converged,
                steps,
                linear_iters,
                res,
            } => (2, [converged as u64, steps, linear_iters, f(res), 0, 0]),
            EventKind::PtcStep {
                step,
                res,
                dt,
                gmres_iters,
            } => (3, [step, f(res), f(dt), gmres_iters, 0, 0]),
            EventKind::Gmres {
                exec,
                iterations,
                residual,
                reductions,
            } => (4, [exec.code(), iterations, f(residual), reductions, 0, 0]),
            EventKind::PolicyDecision {
                chosen,
                unknowns,
                nt,
                serial_s,
                parallel_s,
                crossover,
            } => (
                5,
                [chosen.code(), unknowns, nt, f(serial_s), f(parallel_s), crossover],
            ),
            EventKind::SyncProbe {
                pool_size,
                region_launch_s,
                barrier_phase_s,
            } => (
                6,
                [pool_size, f(region_launch_s), f(barrier_phase_s), 0, 0, 0],
            ),
            EventKind::RegionPanic { pool_size } => (7, [pool_size, 0, 0, 0, 0, 0]),
            EventKind::RegionSummary { regions, barriers } => (8, [regions, barriers, 0, 0, 0, 0]),
            EventKind::CommSend { peer, bytes } => (9, [peer, bytes, 0, 0, 0, 0]),
            EventKind::CommRecv { peer, bytes } => (10, [peer, bytes, 0, 0, 0, 0]),
            EventKind::Anomaly {
                trigger,
                step,
                value,
            } => (11, [trigger.code(), step, f(value), 0, 0, 0]),
            EventKind::ServeAdmit {
                tenant,
                queue_depth,
            } => (12, [tenant, queue_depth, 0, 0, 0, 0]),
            EventKind::ServeJob {
                tenant,
                queue_ns,
                cache_hits,
                cache_misses,
            } => (13, [tenant, queue_ns, cache_hits, cache_misses, 0, 0]),
            EventKind::ServeReject {
                tenant,
                reason,
                queue_depth,
            } => (14, [tenant, reason, queue_depth, 0, 0, 0]),
            EventKind::ServeStages {
                tenant,
                admit_ns,
                dispatch_ns,
                solve_start_ns,
                solve_end_ns,
                reply_ns,
            } => (
                15,
                [tenant, admit_ns, dispatch_ns, solve_start_ns, solve_end_ns, reply_ns],
            ),
        }
    }

    fn decode(kind: u64, p: [u64; PAYLOAD_WORDS]) -> Option<EventKind> {
        let f = f64::from_bits;
        Some(match kind {
            1 => EventKind::SolveStart {
                unknowns: p[0],
                threads: p[1],
            },
            2 => EventKind::SolveEnd {
                converged: p[0] != 0,
                steps: p[1],
                linear_iters: p[2],
                res: f(p[3]),
            },
            3 => EventKind::PtcStep {
                step: p[0],
                res: f(p[1]),
                dt: f(p[2]),
                gmres_iters: p[3],
            },
            4 => EventKind::Gmres {
                exec: ExecTag::from_code(p[0])?,
                iterations: p[1],
                residual: f(p[2]),
                reductions: p[3],
            },
            5 => EventKind::PolicyDecision {
                chosen: ExecTag::from_code(p[0])?,
                unknowns: p[1],
                nt: p[2],
                serial_s: f(p[3]),
                parallel_s: f(p[4]),
                crossover: p[5],
            },
            6 => EventKind::SyncProbe {
                pool_size: p[0],
                region_launch_s: f(p[1]),
                barrier_phase_s: f(p[2]),
            },
            7 => EventKind::RegionPanic { pool_size: p[0] },
            8 => EventKind::RegionSummary {
                regions: p[0],
                barriers: p[1],
            },
            9 => EventKind::CommSend {
                peer: p[0],
                bytes: p[1],
            },
            10 => EventKind::CommRecv {
                peer: p[0],
                bytes: p[1],
            },
            11 => EventKind::Anomaly {
                trigger: Trigger::from_code(p[0])?,
                step: p[1],
                value: f(p[2]),
            },
            12 => EventKind::ServeAdmit {
                tenant: p[0],
                queue_depth: p[1],
            },
            13 => EventKind::ServeJob {
                tenant: p[0],
                queue_ns: p[1],
                cache_hits: p[2],
                cache_misses: p[3],
            },
            14 => EventKind::ServeReject {
                tenant: p[0],
                reason: p[1],
                queue_depth: p[2],
            },
            15 => EventKind::ServeStages {
                tenant: p[0],
                admit_ns: p[1],
                dispatch_ns: p[2],
                solve_start_ns: p[3],
                solve_end_ns: p[4],
                reply_ns: p[5],
            },
            _ => return None,
        })
    }

    /// `(key, value)` payload fields for the JSON artifact.
    fn fields(&self) -> Vec<(&'static str, Json)> {
        match *self {
            EventKind::SolveStart { unknowns, threads } => vec![
                ("unknowns", Json::num(unknowns as f64)),
                ("threads", Json::num(threads as f64)),
            ],
            EventKind::SolveEnd {
                converged,
                steps,
                linear_iters,
                res,
            } => vec![
                ("converged", Json::Bool(converged)),
                ("steps", Json::num(steps as f64)),
                ("linear_iters", Json::num(linear_iters as f64)),
                ("res", json_f64(res)),
            ],
            EventKind::PtcStep {
                step,
                res,
                dt,
                gmres_iters,
            } => vec![
                ("step", Json::num(step as f64)),
                ("res", json_f64(res)),
                ("dt", json_f64(dt)),
                ("gmres_iters", Json::num(gmres_iters as f64)),
            ],
            EventKind::Gmres {
                exec,
                iterations,
                residual,
                reductions,
            } => vec![
                ("exec", Json::str(exec.name())),
                ("iterations", Json::num(iterations as f64)),
                ("residual", json_f64(residual)),
                ("reductions", Json::num(reductions as f64)),
            ],
            EventKind::PolicyDecision {
                chosen,
                unknowns,
                nt,
                serial_s,
                parallel_s,
                crossover,
            } => vec![
                ("chosen", Json::str(chosen.name())),
                ("unknowns", Json::num(unknowns as f64)),
                ("nt", Json::num(nt as f64)),
                ("serial_s", json_f64(serial_s)),
                ("parallel_s", json_f64(parallel_s)),
                (
                    "crossover",
                    if crossover == NO_CROSSOVER {
                        Json::Null
                    } else {
                        Json::num(crossover as f64)
                    },
                ),
            ],
            EventKind::SyncProbe {
                pool_size,
                region_launch_s,
                barrier_phase_s,
            } => vec![
                ("pool_size", Json::num(pool_size as f64)),
                ("region_launch_s", json_f64(region_launch_s)),
                ("barrier_phase_s", json_f64(barrier_phase_s)),
            ],
            EventKind::RegionPanic { pool_size } => {
                vec![("pool_size", Json::num(pool_size as f64))]
            }
            EventKind::RegionSummary { regions, barriers } => vec![
                ("regions", Json::num(regions as f64)),
                ("barriers", Json::num(barriers as f64)),
            ],
            EventKind::CommSend { peer, bytes } | EventKind::CommRecv { peer, bytes } => vec![
                ("peer", Json::num(peer as f64)),
                ("bytes", Json::num(bytes as f64)),
            ],
            EventKind::Anomaly {
                trigger,
                step,
                value,
            } => vec![
                ("trigger", Json::str(trigger.slug())),
                ("step", Json::num(step as f64)),
                ("value", json_f64(value)),
            ],
            // Tenant hashes are full u64s; JSON numbers are f64 and
            // would round them, so they go on the wire as hex strings.
            EventKind::ServeAdmit {
                tenant,
                queue_depth,
            } => vec![
                ("tenant", Json::str(format!("{tenant:016x}"))),
                ("queue_depth", Json::num(queue_depth as f64)),
            ],
            EventKind::ServeJob {
                tenant,
                queue_ns,
                cache_hits,
                cache_misses,
            } => vec![
                ("tenant", Json::str(format!("{tenant:016x}"))),
                ("queue_ns", Json::num(queue_ns as f64)),
                ("cache_hits", Json::num(cache_hits as f64)),
                ("cache_misses", Json::num(cache_misses as f64)),
            ],
            EventKind::ServeReject {
                tenant,
                reason,
                queue_depth,
            } => vec![
                ("tenant", Json::str(format!("{tenant:016x}"))),
                ("reason", Json::str(reject_reason_slug(reason))),
                ("queue_depth", Json::num(queue_depth as f64)),
            ],
            EventKind::ServeStages {
                tenant,
                admit_ns,
                dispatch_ns,
                solve_start_ns,
                solve_end_ns,
                reply_ns,
            } => vec![
                ("tenant", Json::str(format!("{tenant:016x}"))),
                ("admit_ns", Json::num(admit_ns as f64)),
                ("dispatch_ns", Json::num(dispatch_ns as f64)),
                ("solve_start_ns", Json::num(solve_start_ns as f64)),
                ("solve_end_ns", Json::num(solve_end_ns as f64)),
                ("reply_ns", Json::num(reply_ns as f64)),
            ],
        }
    }

    /// One-line human rendering for the text dump / `flight_view`.
    pub fn detail(&self) -> String {
        match *self {
            EventKind::SolveStart { unknowns, threads } => {
                format!("n={unknowns} threads={threads}")
            }
            EventKind::SolveEnd {
                converged,
                steps,
                linear_iters,
                res,
            } => format!(
                "{} after {steps} steps, {linear_iters} linear iters, res={res:.3e}",
                if converged { "converged" } else { "unconverged" }
            ),
            EventKind::PtcStep {
                step,
                res,
                dt,
                gmres_iters,
            } => format!("step={step} res={res:.3e} dt={dt:.3e} gmres={gmres_iters}"),
            EventKind::Gmres {
                exec,
                iterations,
                residual,
                reductions,
            } => format!(
                "exec={} iters={iterations} res={residual:.3e} reductions={reductions}",
                exec.name()
            ),
            EventKind::PolicyDecision {
                chosen,
                unknowns,
                nt,
                serial_s,
                parallel_s,
                crossover,
            } => {
                let x = if crossover == NO_CROSSOVER {
                    "none".to_string()
                } else {
                    crossover.to_string()
                };
                format!(
                    "chose {} (n={unknowns} nt={nt} serial={serial_s:.2e}s parallel={parallel_s:.2e}s crossover={x})",
                    chosen.name()
                )
            }
            EventKind::SyncProbe {
                pool_size,
                region_launch_s,
                barrier_phase_s,
            } => format!(
                "pool={pool_size} launch={region_launch_s:.2e}s barrier={barrier_phase_s:.2e}s"
            ),
            EventKind::RegionPanic { pool_size } => {
                format!("worker panicked in a {pool_size}-thread region")
            }
            EventKind::RegionSummary { regions, barriers } => {
                format!("regions={regions} barriers={barriers}")
            }
            EventKind::CommSend { peer, bytes } => format!("-> rank {peer}, {bytes} B"),
            EventKind::CommRecv { peer, bytes } => format!("<- rank {peer}, {bytes} B"),
            EventKind::Anomaly {
                trigger,
                step,
                value,
            } => format!("{} at step {step} (value {value:.3e})", trigger.slug()),
            EventKind::ServeAdmit {
                tenant,
                queue_depth,
            } => format!("tenant={tenant:016x} depth={queue_depth}"),
            EventKind::ServeJob {
                tenant,
                queue_ns,
                cache_hits,
                cache_misses,
            } => format!(
                "tenant={tenant:016x} queued={:.2}ms cache={cache_hits}h/{cache_misses}m",
                queue_ns as f64 / 1e6
            ),
            EventKind::ServeReject {
                tenant,
                reason,
                queue_depth,
            } => format!(
                "tenant={tenant:016x} reason={} depth={queue_depth}",
                reject_reason_slug(reason)
            ),
            EventKind::ServeStages {
                tenant,
                admit_ns,
                dispatch_ns,
                solve_start_ns,
                solve_end_ns,
                reply_ns,
            } => format!(
                "tenant={tenant:016x} queue={:.2}ms prep={:.2}ms solve={:.2}ms reply={:.2}ms",
                (dispatch_ns.saturating_sub(admit_ns)) as f64 / 1e6,
                (solve_start_ns.saturating_sub(dispatch_ns)) as f64 / 1e6,
                (solve_end_ns.saturating_sub(solve_start_ns)) as f64 / 1e6,
                (reply_ns.saturating_sub(solve_end_ns)) as f64 / 1e6
            ),
        }
    }
}

/// JSON has no NaN/Inf; residuals in a divergence dump are exactly the
/// values that go non-finite, so degrade them to strings rather than the
/// `null` the generic renderer would emit. Public so artifact writers
/// embedding flight evidence (`perf_report`) stay value-faithful too.
pub fn json_f64(x: f64) -> Json {
    if x.is_finite() {
        Json::num(x)
    } else {
        Json::str(format!("{x}"))
    }
}

// ---------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------

/// One event as stored in a ring slot: all words plain integers, so a
/// concurrent reader can never observe anything worse than a stale value
/// (torn *slots* are excluded by the stability filter, same as the span
/// ring, but even a bug there could not corrupt memory).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawEvent {
    /// Kind code (see [`EventKind`]); unknown codes are skipped on decode.
    pub kind: u64,
    /// Nanoseconds since the process telemetry epoch.
    pub t_ns: u64,
    /// Emitting rank (0 outside `fun3d_cluster`).
    pub rank: u64,
    /// Enclosing solve, or 0 outside any solve.
    pub solve: u64,
    /// Kind-specific payload words.
    pub payload: [u64; PAYLOAD_WORDS],
}

type Slot = [AtomicU64; SLOT_WORDS];

/// Fixed-capacity single-writer ring of [`RawEvent`]s — the span ring's
/// publication protocol with a wider, integer-only slot.
pub struct FlightRing {
    slots: Box<[Slot]>,
    /// Total events ever pushed (monotonic; slot index = `head % cap`).
    head: AtomicU64,
}

impl FlightRing {
    /// A ring holding up to `capacity` events (min 2; newest win).
    pub fn new(capacity: usize) -> FlightRing {
        let capacity = capacity.max(2);
        let slots = (0..capacity)
            .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
            .collect();
        FlightRing {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events pushed over the ring's lifetime.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Appends an event. Must only be called from the ring's owning
    /// thread (single-writer invariant).
    pub fn push(&self, ev: RawEvent) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        slot[0].store(ev.kind, Ordering::Relaxed);
        slot[1].store(ev.t_ns, Ordering::Relaxed);
        slot[2].store(ev.rank, Ordering::Relaxed);
        slot[3].store(ev.solve, Ordering::Relaxed);
        for (w, v) in slot[4..].iter().zip(ev.payload) {
            w.store(v, Ordering::Relaxed);
        }
        // Publish: a collector that acquires `h + 1` sees the slot stores.
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copies out the stable events, oldest first, plus the count of
    /// events lost to wraparound (or trimmed as potentially in-flight).
    pub fn collect(&self) -> (Vec<RawEvent>, u64) {
        let cap = self.slots.len() as u64;
        let h1 = self.head.load(Ordering::Acquire);
        let lo = h1.saturating_sub(cap);
        let mut raw: Vec<(u64, RawEvent)> = Vec::with_capacity((h1 - lo) as usize);
        for i in lo..h1 {
            let slot = &self.slots[(i % cap) as usize];
            raw.push((
                i,
                RawEvent {
                    kind: slot[0].load(Ordering::Relaxed),
                    t_ns: slot[1].load(Ordering::Relaxed),
                    rank: slot[2].load(Ordering::Relaxed),
                    solve: slot[3].load(Ordering::Relaxed),
                    payload: std::array::from_fn(|k| slot[4 + k].load(Ordering::Relaxed)),
                },
            ));
        }
        // Index i shares a slot with i + cap, and the writer may already
        // be filling index h2's slot before publishing h2 + 1 — discard
        // every index that could have been mid-overwrite during the copy.
        let h2 = self.head.load(Ordering::Acquire);
        let stable_from = (h2 + 1).saturating_sub(cap);
        let events: Vec<RawEvent> = raw
            .into_iter()
            .filter(|(i, _)| *i >= stable_from)
            .map(|(_, ev)| ev)
            .collect();
        let dropped = h2 - events.len() as u64;
        (events, dropped)
    }

    /// Forgets all recorded events.
    pub fn clear(&self) {
        self.head.store(0, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// Per-thread recording
// ---------------------------------------------------------------------

fn registry() -> &'static Mutex<Vec<Arc<FlightRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<FlightRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static RING: std::cell::OnceCell<Arc<FlightRing>> = const { std::cell::OnceCell::new() };
    /// Current rank tag (set once per rank thread by `fun3d_cluster`).
    static RANK: Cell<u64> = const { Cell::new(0) };
    /// Current solve tag (0 = outside any solve).
    static SOLVE: Cell<u64> = const { Cell::new(0) };
}

fn with_ring<R>(f: impl FnOnce(&FlightRing) -> R) -> R {
    RING.with(|slot| {
        let ring = slot.get_or_init(|| {
            let ring = Arc::new(FlightRing::new(ring_capacity()));
            registry().lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        f(ring)
    })
}

/// Tags this thread's events with a cluster rank (call once at rank
/// thread start; threads outside a cluster run record rank 0).
pub fn set_rank(rank: u64) {
    RANK.with(|r| r.set(rank));
}

/// The rank tag events from this thread carry.
pub fn current_rank() -> u64 {
    RANK.with(|r| r.get())
}

/// Identifier of one ΨTC solve, unique within the process and carried on
/// every event the solve's driver thread emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SolveId(pub u64);

/// Allocates a fresh [`SolveId`], tags this thread with it, and records
/// the [`EventKind::SolveStart`] event. Pair with [`end_solve`].
pub fn begin_solve(unknowns: u64, threads: u64) -> SolveId {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    let id = NEXT.fetch_add(1, StdOrdering::Relaxed);
    SOLVE.with(|s| s.set(id));
    emit(EventKind::SolveStart { unknowns, threads });
    SolveId(id)
}

/// Records the [`EventKind::SolveEnd`] event and clears the thread's
/// solve tag.
pub fn end_solve(id: SolveId, converged: bool, steps: u64, linear_iters: u64, res: f64) {
    SOLVE.with(|s| s.set(id.0));
    emit(EventKind::SolveEnd {
        converged,
        steps,
        linear_iters,
        res,
    });
    SOLVE.with(|s| s.set(0));
}

/// Records one event tagged with an explicit solve id instead of the
/// thread's current tag — for emitters that speak *about* a solve after
/// it finished (the serve dispatcher stamping `ServeJob` with the
/// completed job's [`SolveId`]). Restores the thread's previous tag.
pub fn emit_tagged(solve: u64, kind: EventKind) {
    let prev = SOLVE.with(|s| s.replace(solve));
    emit(kind);
    SOLVE.with(|s| s.set(prev));
}

/// Records one event on the current thread's ring, tagged with the
/// thread's `(rank, solve)`. Allocation-free after the thread's first
/// emit; one relaxed load + branch when the recorder is off.
#[inline]
pub fn emit(kind: EventKind) {
    if !enabled() {
        return;
    }
    let (code, payload) = kind.encode();
    let ev = RawEvent {
        kind: code,
        t_ns: now_ns(),
        rank: current_rank(),
        solve: SOLVE.with(|s| s.get()),
        payload,
    };
    with_ring(|r| r.push(ev));
}

// ---------------------------------------------------------------------
// Snapshot / merge
// ---------------------------------------------------------------------

/// One decoded event in the merged timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlightEvent {
    /// Nanoseconds since the process telemetry epoch (shared by all
    /// ranks: cluster ranks are threads of this process).
    pub t_ns: u64,
    /// Emitting rank.
    pub rank: u64,
    /// Enclosing solve (0 = none).
    pub solve: u64,
    /// Decoded payload.
    pub kind: EventKind,
}

/// A merged, time-ordered snapshot of every thread's flight ring.
#[derive(Clone, Debug, Default)]
pub struct FlightLog {
    /// Events sorted by `(t_ns, rank)`; per-thread order preserved on ties.
    pub events: Vec<FlightEvent>,
    /// Events lost to ring wraparound across all threads.
    pub dropped: u64,
}

impl FlightLog {
    /// Events of one solve, in timeline order.
    pub fn solve(&self, id: u64) -> Vec<&FlightEvent> {
        self.events.iter().filter(|e| e.solve == id).collect()
    }

    /// Distinct solve ids present (sorted; 0 excluded).
    pub fn solve_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.events.iter().map(|e| e.solve).filter(|&s| s != 0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Collects every registered ring into a merged, time-ordered
/// [`FlightLog`]. Safe at any time (single-writer collection protocol);
/// complete timelines require a quiescent point.
pub fn snapshot() -> FlightLog {
    let rings = registry().lock().unwrap();
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for ring in rings.iter() {
        let (raw, d) = ring.collect();
        dropped += d;
        for ev in raw {
            if let Some(kind) = EventKind::decode(ev.kind, ev.payload) {
                events.push(FlightEvent {
                    t_ns: ev.t_ns,
                    rank: ev.rank,
                    solve: ev.solve,
                    kind,
                });
            }
        }
    }
    // Stable sort: cross-thread order by time then rank, per-thread
    // (causal) order preserved on equal keys.
    events.sort_by(|a, b| a.t_ns.cmp(&b.t_ns).then(a.rank.cmp(&b.rank)));
    FlightLog { events, dropped }
}

/// Clears every registered ring (tests and tools; quiescent points only).
pub fn reset() {
    for ring in registry().lock().unwrap().iter() {
        ring.clear();
    }
}

// ---------------------------------------------------------------------
// Dumps
// ---------------------------------------------------------------------

#[derive(Default)]
struct DumpConfig {
    dir: Option<PathBuf>,
    prefix: Option<String>,
}

fn dump_config() -> &'static Mutex<DumpConfig> {
    static CONFIG: OnceLock<Mutex<DumpConfig>> = OnceLock::new();
    CONFIG.get_or_init(|| Mutex::new(DumpConfig::default()))
}

/// Overrides the dump directory (wins over `FUN3D_FLIGHT_DIR`).
pub fn set_dump_dir(dir: impl Into<PathBuf>) {
    dump_config().lock().unwrap().dir = Some(dir.into());
}

/// Overrides the dump file prefix (wins over `FUN3D_FLIGHT_PREFIX`).
pub fn set_dump_prefix(prefix: impl Into<String>) {
    dump_config().lock().unwrap().prefix = Some(prefix.into());
}

/// The directory dumps land in: programmatic override, else
/// `FUN3D_FLIGHT_DIR`, else `target/experiments`.
pub fn dump_dir() -> PathBuf {
    if let Some(d) = dump_config().lock().unwrap().dir.clone() {
        return d;
    }
    std::env::var("FUN3D_FLIGHT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiments"))
}

fn dump_prefix() -> String {
    if let Some(p) = dump_config().lock().unwrap().prefix.clone() {
        return p;
    }
    std::env::var("FUN3D_FLIGHT_PREFIX").unwrap_or_else(|_| "flight".to_string())
}

/// Whether `FUN3D_FLIGHT_DUMP` requests a dump at every solve end.
pub fn dump_requested() -> bool {
    match std::env::var("FUN3D_FLIGHT_DUMP") {
        Ok(v) => !matches!(v.trim(), "" | "0"),
        Err(_) => false,
    }
}

/// Renders a snapshot as the strict dump artifact.
pub fn to_json(log: &FlightLog, trigger: Trigger) -> Json {
    let timeline: Vec<Json> = log
        .events
        .iter()
        .map(|e| {
            let mut fields = vec![
                ("t_ns", Json::num(e.t_ns as f64)),
                ("rank", Json::num(e.rank as f64)),
                ("solve", Json::num(e.solve as f64)),
                ("event", Json::str(e.kind.name())),
            ];
            fields.extend(e.kind.fields());
            Json::obj(fields)
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        ("trigger", Json::str(trigger.slug())),
        ("generated_ns", Json::num(now_ns() as f64)),
        ("events", Json::num(log.events.len() as f64)),
        ("dropped", Json::num(log.dropped as f64)),
        ("timeline", Json::Arr(timeline)),
    ])
}

/// Artifact schema tag ([`check_dump`] requires it verbatim).
pub const SCHEMA: &str = "fun3d.flight.v1";

/// Renders a snapshot as the human-readable text timeline.
pub fn render_text(log: &FlightLog, trigger: Trigger) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flight dump — trigger: {} — {} events ({} dropped)\n",
        trigger.slug(),
        log.events.len(),
        log.dropped
    ));
    for e in &log.events {
        out.push_str(&format!(
            "{:>12.3} ms  rank {}  solve {:>3}  {:<15} {}\n",
            e.t_ns as f64 * 1e-6,
            e.rank,
            e.solve,
            e.kind.name(),
            e.kind.detail()
        ));
    }
    out
}

/// Snapshots every ring and writes `<dir>/<prefix>.<trigger>.json` (the
/// strict artifact) and the matching `.txt` timeline. Returns the JSON
/// path. The directory is created if missing.
pub fn dump(trigger: Trigger) -> std::io::Result<PathBuf> {
    let log = snapshot();
    let dir = dump_dir();
    std::fs::create_dir_all(&dir)?;
    let stem = format!("{}.{}", dump_prefix(), trigger.slug());
    let json_path = dir.join(format!("{stem}.json"));
    let mut f = std::fs::File::create(&json_path)?;
    f.write_all(to_json(&log, trigger).render_pretty().as_bytes())?;
    std::fs::write(dir.join(format!("{stem}.txt")), render_text(&log, trigger))?;
    Ok(json_path)
}

/// Records a [`EventKind::RegionPanic`] event and dumps the flight log —
/// once per process, so a test suite that deliberately panics workers
/// repeatedly does not spam artifacts. Called by `ThreadPool::run` on the
/// launcher thread just before it propagates the panic. IO errors are
/// swallowed: the recorder must never turn one failure into two.
pub fn note_region_panic(pool_size: usize) {
    emit(EventKind::RegionPanic {
        pool_size: pool_size as u64,
    });
    if !enabled() {
        return;
    }
    static DUMPED: AtomicBool = AtomicBool::new(false);
    if !DUMPED.swap(true, StdOrdering::Relaxed) {
        let _ = dump(Trigger::RegionPanic);
    }
}

// ---------------------------------------------------------------------
// Dump validation
// ---------------------------------------------------------------------

/// Strictly validates a parsed dump artifact: schema tag, known trigger,
/// event count consistency, and — on every timeline entry — the
/// `(t_ns, rank, solve)` tags, a known event name, and global time
/// ordering. Returns the event count. Shared by `flight_view --check`
/// and the test suites.
pub fn check_dump(doc: &Json) -> Result<usize, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, want {SCHEMA:?}"));
    }
    let trigger = doc
        .get("trigger")
        .and_then(Json::as_str)
        .ok_or("missing trigger")?;
    if Trigger::parse(trigger).is_none() {
        return Err(format!("unknown trigger {trigger:?}"));
    }
    let declared = doc
        .get("events")
        .and_then(Json::as_f64)
        .ok_or("missing events count")? as usize;
    doc.get("dropped")
        .and_then(Json::as_f64)
        .ok_or("missing dropped count")?;
    let timeline = doc
        .get("timeline")
        .and_then(Json::as_arr)
        .ok_or("missing timeline")?;
    if timeline.len() != declared {
        return Err(format!(
            "events count {} != timeline length {}",
            declared,
            timeline.len()
        ));
    }
    let mut prev_t = 0.0f64;
    for (i, entry) in timeline.iter().enumerate() {
        let t = entry
            .get("t_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("timeline[{i}]: missing t_ns"))?;
        entry
            .get("rank")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("timeline[{i}]: missing rank"))?;
        entry
            .get("solve")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("timeline[{i}]: missing solve"))?;
        let name = entry
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("timeline[{i}]: missing event"))?;
        if !EventKind::NAMES.contains(&name) {
            return Err(format!("timeline[{i}]: unknown event {name:?}"));
        }
        if t < prev_t {
            return Err(format!(
                "timeline[{i}]: t_ns {t} < previous {prev_t} (not time-ordered)"
            ));
        }
        prev_t = t;
    }
    Ok(declared)
}

/// Reads, parses, and [`check_dump`]-validates an artifact from disk.
pub fn check_dump_file(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path:?}: {e}"))?;
    check_dump(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Dump-config mutations are process-global; tests touching them
    /// serialize here.
    static DUMP_LOCK: StdMutex<()> = StdMutex::new(());

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::SolveStart {
                unknowns: 700,
                threads: 4,
            },
            EventKind::SolveEnd {
                converged: true,
                steps: 12,
                linear_iters: 40,
                res: 1.5e-9,
            },
            EventKind::PtcStep {
                step: 3,
                res: 0.25,
                dt: 4.0,
                gmres_iters: 5,
            },
            EventKind::Gmres {
                exec: ExecTag::Team,
                iterations: 7,
                residual: 1e-4,
                reductions: 8,
            },
            EventKind::PolicyDecision {
                chosen: ExecTag::Serial,
                unknowns: 700,
                nt: 4,
                serial_s: 2.4e-4,
                parallel_s: 8.1e-4,
                crossover: 52_000,
            },
            EventKind::PolicyDecision {
                chosen: ExecTag::PerOp,
                unknowns: 1_000_000,
                nt: 2,
                serial_s: 0.3,
                parallel_s: 0.2,
                crossover: NO_CROSSOVER,
            },
            EventKind::SyncProbe {
                pool_size: 2,
                region_launch_s: 3.2e-6,
                barrier_phase_s: 8.0e-7,
            },
            EventKind::RegionPanic { pool_size: 2 },
            EventKind::RegionSummary {
                regions: 120,
                barriers: 64,
            },
            EventKind::CommSend { peer: 1, bytes: 800 },
            EventKind::CommRecv { peer: 0, bytes: 800 },
            EventKind::Anomaly {
                trigger: Trigger::Divergence,
                step: 9,
                value: f64::NAN,
            },
            EventKind::ServeAdmit {
                tenant: 0xdead_beef_cafe_f00d,
                queue_depth: 7,
            },
            EventKind::ServeJob {
                tenant: 0xdead_beef_cafe_f00d,
                queue_ns: 1_500_000,
                cache_hits: 3,
                cache_misses: 1,
            },
            EventKind::ServeReject {
                tenant: u64::MAX,
                reason: 1,
                queue_depth: 64,
            },
            EventKind::ServeStages {
                tenant: 0xdead_beef_cafe_f00d,
                admit_ns: 1_000,
                dispatch_ns: 2_500,
                solve_start_ns: 3_000,
                solve_end_ns: 9_000,
                reply_ns: 9_500,
            },
        ]
    }

    #[test]
    fn every_kind_round_trips_through_encoding() {
        for kind in all_kinds() {
            let (code, payload) = kind.encode();
            let back = EventKind::decode(code, payload).expect("decodes");
            match (kind, back) {
                // NaN != NaN: compare the bit pattern for the anomaly value.
                (
                    EventKind::Anomaly {
                        trigger: ta,
                        step: sa,
                        value: va,
                    },
                    EventKind::Anomaly {
                        trigger: tb,
                        step: sb,
                        value: vb,
                    },
                ) => {
                    assert_eq!((ta, sa), (tb, sb));
                    assert_eq!(va.to_bits(), vb.to_bits());
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn unknown_kind_codes_are_skipped_on_decode() {
        assert_eq!(EventKind::decode(0, [0; PAYLOAD_WORDS]), None);
        assert_eq!(EventKind::decode(999, [7; PAYLOAD_WORDS]), None);
        // Corrupt exec tag inside a known kind: also skipped, not garbage.
        assert_eq!(EventKind::decode(4, [99, 0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let r = FlightRing::new(16);
        for i in 0..23u64 {
            r.push(RawEvent {
                kind: 3,
                t_ns: i * 10,
                rank: 0,
                solve: 1,
                payload: [i, 0, 0, 0, 0, 0],
            });
        }
        let (events, dropped) = r.collect();
        assert_eq!(events.len(), 15); // cap - 1: oldest retained slot trimmed
        assert_eq!(dropped, 23 - 15);
        assert_eq!(events.last().unwrap().payload[0], 22);
        for w in events.windows(2) {
            assert_eq!(w[1].payload[0] - w[0].payload[0], 1);
        }
    }

    #[test]
    fn trigger_and_exec_slugs_round_trip() {
        for t in [
            Trigger::RegionPanic,
            Trigger::Divergence,
            Trigger::Stagnation,
            Trigger::WallBudget,
            Trigger::Request,
        ] {
            assert_eq!(Trigger::parse(t.slug()), Some(t));
            assert_eq!(Trigger::from_code(t.code()), Some(t));
        }
        for e in [ExecTag::Serial, ExecTag::PerOp, ExecTag::Team] {
            assert_eq!(ExecTag::parse(e.name()), Some(e));
            assert_eq!(ExecTag::from_code(e.code()), Some(e));
        }
        assert_eq!(Trigger::parse("nope"), None);
        assert_eq!(ExecTag::parse("auto"), None, "Auto never *executes*");
    }

    #[test]
    fn emit_snapshot_merge_and_solve_tagging() {
        let id = begin_solve(700, 2);
        emit(EventKind::PtcStep {
            step: 1,
            res: 0.5,
            dt: 2.0,
            gmres_iters: 3,
        });
        end_solve(id, true, 1, 3, 1e-10);
        let log = snapshot();
        let mine = log.solve(id.0);
        assert_eq!(mine.len(), 3, "start + step + end");
        assert!(matches!(mine[0].kind, EventKind::SolveStart { .. }));
        assert!(matches!(mine[1].kind, EventKind::PtcStep { .. }));
        assert!(matches!(mine[2].kind, EventKind::SolveEnd { .. }));
        for e in &mine {
            assert_eq!(e.rank, 0);
            assert_eq!(e.solve, id.0);
        }
        // After end_solve, new events are outside any solve.
        emit(EventKind::SyncProbe {
            pool_size: 2,
            region_launch_s: 1e-6,
            barrier_phase_s: 1e-7,
        });
        let log = snapshot();
        assert!(log
            .events
            .iter()
            .any(|e| e.solve == 0 && matches!(e.kind, EventKind::SyncProbe { .. })));
        // Timeline is globally time-ordered.
        for w in log.events.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns);
        }
        assert!(log.solve_ids().contains(&id.0));
    }

    #[test]
    fn cross_thread_snapshot_merges_time_ordered() {
        let id = begin_solve(64, 2);
        std::thread::spawn(move || {
            set_rank(5);
            SOLVE.with(|s| s.set(id.0));
            for i in 0..10 {
                emit(EventKind::CommSend {
                    peer: 0,
                    bytes: i * 8,
                });
            }
        })
        .join()
        .unwrap();
        emit(EventKind::PtcStep {
            step: 1,
            res: 0.1,
            dt: 1.0,
            gmres_iters: 1,
        });
        end_solve(id, false, 1, 1, 0.1);
        let log = snapshot();
        let mine = log.solve(id.0);
        assert!(mine.iter().any(|e| e.rank == 5));
        assert!(mine.iter().any(|e| e.rank == 0));
        for w in log.events.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns, "merge must be time-ordered");
        }
    }

    #[test]
    fn disabled_recorder_emits_nothing() {
        let _g = DUMP_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(false);
        let before = snapshot().events.len() + snapshot().dropped as usize;
        for _ in 0..100 {
            emit(EventKind::RegionSummary {
                regions: 1,
                barriers: 1,
            });
        }
        let after = snapshot().events.len() + snapshot().dropped as usize;
        set_enabled(true);
        assert_eq!(before, after, "off-mode emit recorded something");
    }

    #[test]
    fn dump_writes_validating_artifact_and_text() {
        let _g = DUMP_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = PathBuf::from("target/test-flight-dump");
        let _ = std::fs::remove_dir_all(&dir);
        set_dump_dir(&dir);
        set_dump_prefix("unit");
        let id = begin_solve(32, 1);
        emit(EventKind::Anomaly {
            trigger: Trigger::Divergence,
            step: 4,
            value: f64::INFINITY,
        });
        end_solve(id, false, 4, 9, f64::NAN);
        let path = dump(Trigger::Divergence).expect("dump writes");
        assert_eq!(path, dir.join("unit.divergence.json"));
        let n = check_dump_file(&path).expect("artifact validates");
        assert!(n >= 3);
        // The text rendering exists and names the trigger.
        let txt = std::fs::read_to_string(dir.join("unit.divergence.txt")).unwrap();
        assert!(txt.contains("trigger: divergence"));
        assert!(txt.contains("anomaly"));
        // Reset the global config for other tests.
        dump_config().lock().unwrap().dir = None;
        dump_config().lock().unwrap().prefix = None;
    }

    #[test]
    fn check_dump_rejects_malformed_artifacts() {
        let ok = to_json(
            &FlightLog {
                events: vec![FlightEvent {
                    t_ns: 5,
                    rank: 0,
                    solve: 1,
                    kind: EventKind::RegionPanic { pool_size: 2 },
                }],
                dropped: 0,
            },
            Trigger::RegionPanic,
        );
        assert_eq!(check_dump(&ok), Ok(1));

        let reject = |doc: &Json, why: &str| {
            assert!(check_dump(doc).is_err(), "accepted artifact with {why}");
        };
        reject(&Json::obj(vec![("schema", Json::str("wrong"))]), "bad schema");
        let mut bad_trigger = ok.clone();
        if let Json::Obj(pairs) = &mut bad_trigger {
            pairs[1].1 = Json::str("meteor_strike");
        }
        reject(&bad_trigger, "unknown trigger");
        let mut bad_count = ok.clone();
        if let Json::Obj(pairs) = &mut bad_count {
            pairs[3].1 = Json::num(7.0);
        }
        reject(&bad_count, "wrong event count");
        // Out-of-order timeline.
        let unordered = to_json(
            &FlightLog {
                events: vec![
                    FlightEvent {
                        t_ns: 10,
                        rank: 0,
                        solve: 1,
                        kind: EventKind::RegionPanic { pool_size: 2 },
                    },
                    FlightEvent {
                        t_ns: 3,
                        rank: 0,
                        solve: 1,
                        kind: EventKind::RegionPanic { pool_size: 2 },
                    },
                ],
                dropped: 0,
            },
            Trigger::RegionPanic,
        );
        reject(&unordered, "time-disordered timeline");
    }

    #[test]
    fn non_finite_floats_survive_the_strict_json_round_trip() {
        let log = FlightLog {
            events: vec![FlightEvent {
                t_ns: 1,
                rank: 0,
                solve: 1,
                kind: EventKind::PtcStep {
                    step: 1,
                    res: f64::NAN,
                    dt: f64::INFINITY,
                    gmres_iters: 0,
                },
            }],
            dropped: 0,
        };
        let doc = to_json(&log, Trigger::Divergence);
        let text = doc.render_pretty();
        let back = Json::parse(&text).expect("non-finite values must not break strict JSON");
        assert_eq!(check_dump(&back), Ok(1));
        let entry = &back.get("timeline").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(entry.get("res").and_then(Json::as_str), Some("NaN"));
        assert_eq!(entry.get("dt").and_then(Json::as_str), Some("inf"));
    }
}
