//! Chrome `trace_event` exporter.
//!
//! Serializes a [`Snapshot`](super::Snapshot) into the JSON Object
//! Format understood by `chrome://tracing` and Perfetto: a top-level
//! object with a `traceEvents` array of complete events (`"ph": "X"`,
//! microsecond timestamps) plus thread-name metadata events, one `tid`
//! per recorded thread. Load the file via Perfetto's "Open trace file"
//! to see every worker's span timeline side by side.

use super::json::Json;
use super::Snapshot;

/// Builds the Chrome trace JSON document for a snapshot.
///
/// Threads are numbered `tid = 1..` in snapshot order and labeled with
/// their telemetry labels via `thread_name` metadata events. All span
/// events live in `pid = 1`.
pub fn chrome_trace(snap: &Snapshot) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for (idx, t) in snap.threads.iter().enumerate() {
        let tid = (idx + 1) as f64;
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::num(1.0)),
            ("tid", Json::num(tid)),
            (
                "args",
                Json::obj(vec![("name", Json::str(&t.label))]),
            ),
        ]));
        for ev in &t.spans {
            events.push(Json::obj(vec![
                ("name", Json::str(ev.name)),
                ("cat", Json::str("fun3d")),
                ("ph", Json::str("X")),
                ("ts", Json::num(ev.start_ns as f64 / 1e3)),
                ("dur", Json::num(ev.dur_ns as f64 / 1e3)),
                ("pid", Json::num(1.0)),
                ("tid", Json::num(tid)),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

/// Renders [`chrome_trace`] to a string.
pub fn render_chrome_trace(snap: &Snapshot) -> String {
    chrome_trace(snap).render()
}

#[cfg(test)]
mod tests {
    use super::super::{SeriesPoint, SpanEvent, ThreadProfile};
    use super::*;
    use crate::telemetry::CounterMap;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            threads: vec![
                ThreadProfile {
                    label: "main".into(),
                    spans: vec![
                        SpanEvent {
                            name: "flux",
                            start_ns: 1_000,
                            dur_ns: 2_500,
                        },
                        SpanEvent {
                            name: "gradient \"q\"\\grad",
                            start_ns: 4_000,
                            dur_ns: 1_000,
                        },
                    ],
                    dropped_spans: 0,
                    counters: CounterMap::new(),
                    series: vec![SeriesPoint {
                        series: "residual",
                        x: 1.0,
                        y: 0.5,
                    }],
                },
                ThreadProfile {
                    label: "fun3d-worker-1".into(),
                    spans: vec![SpanEvent {
                        name: "chunk",
                        start_ns: 1_200,
                        dur_ns: 800,
                    }],
                    dropped_spans: 3,
                    counters: CounterMap::new(),
                    series: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn trace_is_well_formed_json_with_expected_shape() {
        let rendered = render_chrome_trace(&sample_snapshot());
        let doc = Json::parse(&rendered).expect("trace must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 2 metadata + 3 span events
        assert_eq!(events.len(), 5);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        assert_eq!(
            metas[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("main")
        );
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            assert!(ph == "M" || ph == "X");
            assert_eq!(e.get("pid").and_then(Json::as_f64), Some(1.0));
            assert!(e.get("tid").and_then(Json::as_f64).unwrap() >= 1.0);
            if ph == "X" {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
            }
        }
        // µs conversion: 2500 ns -> 2.5 µs
        let flux = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("flux"))
            .unwrap();
        assert!((flux.get("dur").and_then(Json::as_f64).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn names_needing_escapes_round_trip() {
        let rendered = render_chrome_trace(&sample_snapshot());
        let doc = Json::parse(&rendered).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("gradient \"q\"\\grad")));
    }

    #[test]
    fn empty_snapshot_is_still_valid() {
        let rendered = render_chrome_trace(&Snapshot::default());
        let doc = Json::parse(&rendered).unwrap();
        assert_eq!(
            doc.get("traceEvents").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
    }
}
