//! Chrome `trace_event` exporter and per-request trace assembly.
//!
//! Two exporters live here:
//!
//! * [`chrome_trace`] serializes a [`Snapshot`](super::Snapshot) into
//!   the JSON Object Format understood by `chrome://tracing` and
//!   Perfetto: a top-level object with a `traceEvents` array of
//!   complete events (`"ph": "X"`, microsecond timestamps) plus
//!   thread-name metadata events, one `tid` per recorded thread.
//! * [`assemble`] joins the three observability planes — flight-recorder
//!   events, span rings, and the live metrics histograms — into one
//!   causally-ordered [`RequestTrace`] for a single `SolveId`, so a
//!   slow request in a running service can be explained end to end:
//!   where it queued, which stage ate the time, what the solver did,
//!   and how it compares to the tenant's live latency distribution.

use super::flight::{self, EventKind, FlightEvent, FlightLog};
use super::json::Json;
use super::metrics::{self, HistSnapshot, MetricsSnapshot};
use super::Snapshot;

/// Builds the Chrome trace JSON document for a snapshot.
///
/// Threads are numbered `tid = 1..` in snapshot order and labeled with
/// their telemetry labels via `thread_name` metadata events. All span
/// events live in `pid = 1`.
pub fn chrome_trace(snap: &Snapshot) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for (idx, t) in snap.threads.iter().enumerate() {
        let tid = (idx + 1) as f64;
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::num(1.0)),
            ("tid", Json::num(tid)),
            (
                "args",
                Json::obj(vec![("name", Json::str(&t.label))]),
            ),
        ]));
        for ev in &t.spans {
            events.push(Json::obj(vec![
                ("name", Json::str(ev.name)),
                ("cat", Json::str("fun3d")),
                ("ph", Json::str("X")),
                ("ts", Json::num(ev.start_ns as f64 / 1e3)),
                ("dur", Json::num(ev.dur_ns as f64 / 1e3)),
                ("pid", Json::num(1.0)),
                ("tid", Json::num(tid)),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

/// Renders [`chrome_trace`] to a string.
pub fn render_chrome_trace(snap: &Snapshot) -> String {
    chrome_trace(snap).render()
}

// ---------------------------------------------------------------------
// Per-request trace assembly
// ---------------------------------------------------------------------

/// Schema tag on every assembled request-trace JSON document.
pub const TRACE_SCHEMA: &str = "fun3d.trace.v1";

/// FNV-1a over a tenant name — the same tag `fun3d-serve` stamps on
/// flight events, recomputed here so hash → name resolution works
/// without a dependency on the serve crate.
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One named point on a request's lifecycle (admit, dispatch, …), on
/// the process telemetry clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageMark {
    /// Stage name.
    pub name: &'static str,
    /// Nanoseconds since the telemetry epoch.
    pub t_ns: u64,
}

/// A span overlapping the request window, with its owning thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Telemetry label of the recording thread.
    pub thread: String,
    /// Span name.
    pub name: &'static str,
    /// Start, ns since the telemetry epoch.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
}

/// One request, end to end: stage boundaries, every flight event tagged
/// with its `SolveId`, the spans that ran inside its window, and the
/// live stage histograms it contributed to.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// The request's solve tag ([`flight::SolveId`] raw value).
    pub solve: u64,
    /// FNV-64 tenant hash, when a serve event carried one.
    pub tenant: Option<u64>,
    /// Tenant name, when the hash resolves against the metrics registry
    /// (`serve.tenant.<name>.*` histogram names).
    pub tenant_name: Option<String>,
    /// `[start, end]` of the request on the telemetry clock, ns.
    pub window: (u64, u64),
    /// Lifecycle marks, causally ordered.
    pub stages: Vec<StageMark>,
    /// Flight events of this solve, timeline-ordered.
    pub events: Vec<FlightEvent>,
    /// Spans overlapping the window, ordered by start.
    pub spans: Vec<TraceSpan>,
    /// Live histograms giving this request distributional context
    /// (the tenant's stage histograms plus solver-wide ones).
    pub hists: Vec<HistSnapshot>,
}

/// Assembles the per-request trace for `solve` from the live global
/// telemetry state. `None` when no flight event carries the tag (the
/// request never existed, or the ring already wrapped past it).
pub fn assemble(solve: flight::SolveId) -> Option<RequestTrace> {
    assemble_from(
        &flight::snapshot(),
        &super::snapshot(),
        &metrics::snapshot(),
        solve.0,
    )
}

/// Pure join over explicit snapshots (testable without global state).
pub fn assemble_from(
    log: &FlightLog,
    spans: &Snapshot,
    live: &MetricsSnapshot,
    solve: u64,
) -> Option<RequestTrace> {
    let events: Vec<FlightEvent> = log.events.iter().filter(|e| e.solve == solve).copied().collect();
    if events.is_empty() {
        return None;
    }

    // Stage marks: the ServeStages record when the request went through
    // the service front-end, else the solve start/end events.
    let mut stages: Vec<StageMark> = Vec::new();
    let mut tenant = None;
    for e in &events {
        match e.kind {
            EventKind::ServeStages {
                tenant: t,
                admit_ns,
                dispatch_ns,
                solve_start_ns,
                solve_end_ns,
                reply_ns,
            } => {
                tenant = Some(t);
                stages = vec![
                    StageMark { name: "admit", t_ns: admit_ns },
                    StageMark { name: "dispatch", t_ns: dispatch_ns },
                    StageMark { name: "solve_start", t_ns: solve_start_ns },
                    StageMark { name: "solve_end", t_ns: solve_end_ns },
                    StageMark { name: "reply", t_ns: reply_ns },
                ];
            }
            EventKind::ServeAdmit { tenant: t, .. }
            | EventKind::ServeJob { tenant: t, .. } => tenant = tenant.or(Some(t)),
            _ => {}
        }
    }
    if stages.is_empty() {
        for e in &events {
            match e.kind {
                EventKind::SolveStart { .. } => {
                    stages.push(StageMark { name: "solve_start", t_ns: e.t_ns });
                }
                EventKind::SolveEnd { .. } => {
                    stages.push(StageMark { name: "solve_end", t_ns: e.t_ns });
                }
                _ => {}
            }
        }
    }
    stages.sort_by_key(|s| s.t_ns);

    // The window covers every tagged event and every stage mark.
    let mut lo = events.iter().map(|e| e.t_ns).min().unwrap_or(0);
    let mut hi = events.iter().map(|e| e.t_ns).max().unwrap_or(0);
    for s in &stages {
        lo = lo.min(s.t_ns);
        hi = hi.max(s.t_ns);
    }

    // Spans overlapping [lo, hi].
    let mut trace_spans: Vec<TraceSpan> = Vec::new();
    for t in &spans.threads {
        for ev in &t.spans {
            if ev.start_ns <= hi && ev.start_ns + ev.dur_ns >= lo {
                trace_spans.push(TraceSpan {
                    thread: t.label.clone(),
                    name: ev.name,
                    start_ns: ev.start_ns,
                    dur_ns: ev.dur_ns,
                });
            }
        }
    }
    trace_spans.sort_by_key(|s| (s.start_ns, s.dur_ns));

    // Distributional context: the tenant's own stage histograms
    // (resolved by hashing the name segment of `serve.tenant.<name>.*`)
    // plus solver-wide latency histograms.
    let tenant_name = tenant.and_then(|h| {
        live.hists.iter().find_map(|hist| {
            let name = tenant_segment(&hist.name)?;
            (fnv64(name) == h).then(|| name.to_string())
        })
    });
    let hists: Vec<HistSnapshot> = live
        .hists
        .iter()
        .filter(|hist| {
            if let Some(seg) = tenant_segment(&hist.name) {
                // Per-tenant histograms: only this request's tenant.
                tenant_name.as_deref() == Some(seg)
            } else {
                hist.name.starts_with("solver.") || hist.name.starts_with("serve.")
            }
        })
        .cloned()
        .collect();

    Some(RequestTrace {
        solve,
        tenant,
        tenant_name,
        window: (lo, hi),
        stages,
        events,
        spans: trace_spans,
        hists,
    })
}

/// The `<name>` inside a `serve.tenant.<name>.<rest>` metric name.
fn tenant_segment(metric: &str) -> Option<&str> {
    let rest = metric.strip_prefix("serve.tenant.")?;
    let dot = rest.rfind('.')?;
    Some(&rest[..dot])
}

impl RequestTrace {
    /// Strict-JSON document (`fun3d.trace.v1`).
    pub fn to_json(&self) -> Json {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::str(s.name)),
                    ("t_ns", Json::num(s.t_ns as f64)),
                ])
            })
            .collect();
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("t_ns", Json::num(e.t_ns as f64)),
                    ("rank", Json::num(e.rank as f64)),
                    ("event", Json::str(e.kind.name())),
                    ("detail", Json::str(e.kind.detail())),
                ])
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("thread", Json::str(&s.thread)),
                    ("name", Json::str(s.name)),
                    ("start_ns", Json::num(s.start_ns as f64)),
                    ("dur_ns", Json::num(s.dur_ns as f64)),
                ])
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|h| (h.name.as_str(), metrics::hist_json(h)))
            .collect::<Vec<_>>();
        Json::obj(vec![
            ("schema", Json::str(TRACE_SCHEMA)),
            ("solve", Json::num(self.solve as f64)),
            (
                "tenant",
                match self.tenant {
                    Some(t) => Json::str(format!("{t:016x}")),
                    None => Json::Null,
                },
            ),
            (
                "tenant_name",
                match &self.tenant_name {
                    Some(n) => Json::str(n),
                    None => Json::Null,
                },
            ),
            (
                "window",
                Json::obj(vec![
                    ("start_ns", Json::num(self.window.0 as f64)),
                    ("end_ns", Json::num(self.window.1 as f64)),
                ]),
            ),
            ("stages", Json::Arr(stages)),
            ("events", Json::Arr(events)),
            ("spans", Json::Arr(spans)),
            ("histograms", Json::obj(hists)),
        ])
    }

    /// Human timeline: stage marks and flight events interleaved in
    /// causal order, times relative to the window start.
    pub fn render_text(&self) -> String {
        let t0 = self.window.0;
        let rel = |t: u64| (t.saturating_sub(t0)) as f64 / 1e6;
        let mut out = String::new();
        let tenant = match (&self.tenant_name, self.tenant) {
            (Some(n), _) => n.clone(),
            (None, Some(h)) => format!("{h:016x}"),
            (None, None) => "-".to_string(),
        };
        out.push_str(&format!(
            "request solve={} tenant={tenant} window={:.3}ms\n",
            self.solve,
            (self.window.1 - self.window.0) as f64 / 1e6
        ));
        // Interleave stage marks and events on one clock.
        let mut lines: Vec<(u64, u8, String)> = Vec::new();
        for s in &self.stages {
            lines.push((s.t_ns, 0, format!("[stage] {}", s.name)));
        }
        for e in &self.events {
            lines.push((e.t_ns, 1, format!("{}: {}", e.kind.name(), e.kind.detail())));
        }
        lines.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        for (t, _, line) in lines {
            out.push_str(&format!("  +{:>10.3}ms  {line}\n", rel(t)));
        }
        if !self.spans.is_empty() {
            out.push_str(&format!("  spans overlapping window: {}\n", self.spans.len()));
        }
        for h in &self.hists {
            if h.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  hist {:<40} n={:<7} p50={:.3}ms p99={:.3}ms max={:.3}ms\n",
                h.name,
                h.count,
                h.quantile(0.50) / 1e6,
                h.quantile(0.99) / 1e6,
                h.max_ns as f64 / 1e6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::{SeriesPoint, SpanEvent, ThreadProfile};
    use super::*;
    use crate::telemetry::CounterMap;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            threads: vec![
                ThreadProfile {
                    label: "main".into(),
                    spans: vec![
                        SpanEvent {
                            name: "flux",
                            start_ns: 1_000,
                            dur_ns: 2_500,
                        },
                        SpanEvent {
                            name: "gradient \"q\"\\grad",
                            start_ns: 4_000,
                            dur_ns: 1_000,
                        },
                    ],
                    dropped_spans: 0,
                    counters: CounterMap::new(),
                    series: vec![SeriesPoint {
                        series: "residual",
                        x: 1.0,
                        y: 0.5,
                    }],
                },
                ThreadProfile {
                    label: "fun3d-worker-1".into(),
                    spans: vec![SpanEvent {
                        name: "chunk",
                        start_ns: 1_200,
                        dur_ns: 800,
                    }],
                    dropped_spans: 3,
                    counters: CounterMap::new(),
                    series: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn trace_is_well_formed_json_with_expected_shape() {
        let rendered = render_chrome_trace(&sample_snapshot());
        let doc = Json::parse(&rendered).expect("trace must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 2 metadata + 3 span events
        assert_eq!(events.len(), 5);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        assert_eq!(
            metas[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("main")
        );
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            assert!(ph == "M" || ph == "X");
            assert_eq!(e.get("pid").and_then(Json::as_f64), Some(1.0));
            assert!(e.get("tid").and_then(Json::as_f64).unwrap() >= 1.0);
            if ph == "X" {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
            }
        }
        // µs conversion: 2500 ns -> 2.5 µs
        let flux = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("flux"))
            .unwrap();
        assert!((flux.get("dur").and_then(Json::as_f64).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn names_needing_escapes_round_trip() {
        let rendered = render_chrome_trace(&sample_snapshot());
        let doc = Json::parse(&rendered).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("gradient \"q\"\\grad")));
    }

    #[test]
    fn assemble_joins_events_stages_spans_and_histograms() {
        let tenant = fnv64("acme");
        let log = FlightLog {
            events: vec![
                FlightEvent {
                    t_ns: 1_000,
                    rank: 0,
                    solve: 7,
                    kind: EventKind::ServeAdmit {
                        tenant,
                        queue_depth: 1,
                    },
                },
                FlightEvent {
                    t_ns: 2_000,
                    rank: 0,
                    solve: 7,
                    kind: EventKind::SolveStart {
                        unknowns: 700,
                        threads: 1,
                    },
                },
                FlightEvent {
                    t_ns: 5_000,
                    rank: 0,
                    solve: 7,
                    kind: EventKind::ServeStages {
                        tenant,
                        admit_ns: 1_000,
                        dispatch_ns: 1_500,
                        solve_start_ns: 2_000,
                        solve_end_ns: 4_000,
                        reply_ns: 5_000,
                    },
                },
                // Another request: must not leak into solve 7's trace.
                FlightEvent {
                    t_ns: 3_000,
                    rank: 0,
                    solve: 8,
                    kind: EventKind::SolveStart {
                        unknowns: 700,
                        threads: 1,
                    },
                },
            ],
            dropped: 0,
        };
        let spans = Snapshot {
            threads: vec![ThreadProfile {
                label: "team-0".into(),
                spans: vec![
                    SpanEvent {
                        name: "ptc.step",
                        start_ns: 2_100,
                        dur_ns: 500,
                    },
                    // Outside the window: excluded.
                    SpanEvent {
                        name: "ptc.step",
                        start_ns: 9_000,
                        dur_ns: 100,
                    },
                ],
                dropped_spans: 0,
                counters: CounterMap::new(),
                series: Vec::new(),
            }],
        };
        let mut h = crate::telemetry::metrics::HistSnapshot::empty("serve.tenant.acme.total_ns");
        h.count = 3;
        h.sum_ns = 9_000;
        h.max_ns = 4_000;
        h.buckets = vec![(40, 3)];
        let mut other = crate::telemetry::metrics::HistSnapshot::empty("serve.tenant.rival.total_ns");
        other.count = 1;
        other.buckets = vec![(10, 1)];
        let live = MetricsSnapshot {
            t_ns: 10_000,
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: vec![h, other],
        };

        let trace = assemble_from(&log, &spans, &live, 7).expect("solve 7 assembles");
        assert_eq!(trace.tenant, Some(tenant));
        assert_eq!(trace.tenant_name.as_deref(), Some("acme"));
        assert_eq!(trace.window, (1_000, 5_000));
        // Stages come from ServeStages, causally ordered.
        let names: Vec<_> = trace.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, ["admit", "dispatch", "solve_start", "solve_end", "reply"]);
        assert!(trace.stages.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        // No events borrowed from solve 8.
        assert!(trace.events.iter().all(|e| e.solve == 7));
        assert_eq!(trace.events.len(), 3);
        // Overlapping span in, distant span out.
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].start_ns, 2_100);
        // Only this tenant's histogram is attached.
        assert_eq!(trace.hists.len(), 1);
        assert_eq!(trace.hists[0].name, "serve.tenant.acme.total_ns");

        // JSON document is valid and carries the schema + stage list.
        let doc = Json::parse(&trace.to_json().render()).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(TRACE_SCHEMA));
        assert_eq!(
            doc.get("stages").and_then(Json::as_arr).map(<[Json]>::len),
            Some(5)
        );
        assert_eq!(
            doc.get("tenant").and_then(Json::as_str),
            Some(format!("{tenant:016x}").as_str())
        );
        // Text rendering mentions the tenant and every stage.
        let text = trace.render_text();
        assert!(text.contains("tenant=acme"));
        for s in ["admit", "dispatch", "solve_start", "solve_end", "reply"] {
            assert!(text.contains(&format!("[stage] {s}")), "missing {s} in:\n{text}");
        }

        // Unknown solve: no trace.
        assert!(assemble_from(&log, &spans, &live, 99).is_none());
    }

    #[test]
    fn assemble_without_serve_stages_uses_solve_events() {
        let log = FlightLog {
            events: vec![
                FlightEvent {
                    t_ns: 100,
                    rank: 0,
                    solve: 3,
                    kind: EventKind::SolveStart {
                        unknowns: 10,
                        threads: 1,
                    },
                },
                FlightEvent {
                    t_ns: 900,
                    rank: 0,
                    solve: 3,
                    kind: EventKind::SolveEnd {
                        converged: true,
                        steps: 2,
                        linear_iters: 4,
                        res: 1e-9,
                    },
                },
            ],
            dropped: 0,
        };
        let trace = assemble_from(&log, &Snapshot::default(), &MetricsSnapshot::default(), 3)
            .expect("assembles");
        assert_eq!(trace.tenant, None);
        let names: Vec<_> = trace.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, ["solve_start", "solve_end"]);
        assert_eq!(trace.window, (100, 900));
    }

    #[test]
    fn empty_snapshot_is_still_valid() {
        let rendered = render_chrome_trace(&Snapshot::default());
        let doc = Json::parse(&rendered).unwrap();
        assert_eq!(
            doc.get("traceEvents").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
    }
}
