//! A minimal JSON value type: build, render, parse.
//!
//! The run-summary artifact and the Chrome trace-event file are JSON, and
//! the workspace is hermetic (no `serde`), so this module provides the
//! small subset needed: a value enum with a renderer that escapes
//! correctly, and a strict recursive-descent parser used by tests and by
//! `perf_report --check` to prove the artifacts stay machine-readable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (rendered as an integer when exactly integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number constructor (also use for integers; u64 counters up to 2^53
    /// render exactly).
    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders compact JSON (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders with two-space indentation (the artifact form: humans read
    /// these files too).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => render_num(*x, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    v.render_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, depth + 1);
                    render_str(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }

    /// Parses a complete JSON document (trailing non-whitespace is an
    /// error). Returns a human-readable error with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn render_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; null is the conventional degradation.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // consume a run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| format!("short \\u escape at byte {}", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // surrogate pairs are not needed by our own
                            // artifacts; map lone surrogates to U+FFFD
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::str("flux")),
            ("seconds", Json::num(1.25)),
            ("calls", Json::num(42.0)),
            ("tags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::num(-3.5e-7))])),
        ]);
        for text in [v.render(), v.render_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, v, "failed roundtrip of {text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(42.0).render(), "42");
        assert_eq!(Json::num(-7.0).render(), "-7");
        assert_eq!(Json::num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn string_escapes() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.render();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"π≈3\" ] } \n").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[1].as_str(), Some("π≈3"));
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::obj(vec![("x", Json::num(2.0))]);
        assert_eq!(v.get("x").unwrap().as_f64(), Some(2.0));
        assert!(v.get("y").is_none());
        assert!(v.as_arr().is_none());
    }

    #[test]
    fn u64_counters_roundtrip_exactly() {
        // counters up to 2^53 survive the f64 path bit-exactly
        let n = (1u64 << 53) - 1;
        let text = Json::num(n as f64).render();
        assert_eq!(text, format!("{n}"));
        assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(n as f64));
    }
}
