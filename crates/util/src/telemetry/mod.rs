//! Low-overhead run telemetry: per-thread spans, performance-model
//! counters, convergence series, and machine-readable exporters.
//!
//! The paper's argument is measurement-driven — Fig. 5's kernel profile,
//! Fig. 6's achieved-vs-STREAM bandwidth, Table 3's bytes-per-edge model.
//! [`PhaseTimers`](crate::PhaseTimers) gives single-threaded wall clocks;
//! this module adds everything else those figures need:
//!
//! * **spans** — named intervals recorded into a per-thread, single-writer
//!   [`ring::SpanRing`]. A worker thread's push is lock-free and
//!   allocation-free; rings are merged only at collection time.
//! * **counters** — the [`counters::KernelCounts`] vocabulary (items,
//!   bytes read/written, flops) from which reports derive arithmetic
//!   intensity and achieved GB/s against a machine's STREAM number.
//! * **series** — low-frequency `(x, y)` observations such as the
//!   per-step residual norm and GMRES iteration counts.
//! * **exporters** — Chrome `trace_event` JSON ([`trace`]) for
//!   `chrome://tracing`/Perfetto timelines, and a [`json::Json`] builder
//!   for the structured run summary.
//!
//! ## Enablement
//!
//! The `FUN3D_TELEMETRY` environment variable picks a [`Level`]:
//! `off`, `counters` (the default), `spans`, or `full`. Every
//! instrumentation site is gated on one relaxed atomic load and a branch;
//! at `off` nothing allocates and nothing is recorded. Tools may override
//! programmatically with [`set_level`].
//!
//! ## Threads
//!
//! Each thread lazily registers one recorder cell in a global registry on
//! first use; all subsequent writes touch only that thread's cell (the
//! span ring is written lock-free, counters/series take an uncontended
//! per-thread mutex at kernel-invocation granularity, not in inner
//! loops). [`snapshot`] merges every registered cell — including those of
//! threads that have since exited, so short-lived rank threads still show
//! up in the trace.

pub mod counters;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod ring;
pub mod roofline;
pub mod sampler;
pub mod trace;

pub use counters::{CounterMap, KernelCounts};
pub use ring::SpanEvent;
pub use sampler::{SampleProfile, Sampler};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// How much the telemetry layer records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Record nothing; every site costs one load + branch.
    Off = 0,
    /// Counters and series only (the default: no per-span clock reads,
    /// so timing-sensitive tests are unaffected).
    Counters = 1,
    /// Counters plus kernel-level spans.
    Spans = 2,
    /// Everything, including high-frequency spans such as per-chunk
    /// `parallel_for` intervals.
    Full = 3,
}

impl Level {
    /// Parses the `FUN3D_TELEMETRY` value (unknown strings fall back to
    /// the default so a typo can't turn a run into a panic).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "counters" | "on" | "1" => Some(Level::Counters),
            "spans" | "2" => Some(Level::Spans),
            "full" | "all" | "3" => Some(Level::Full),
            _ => None,
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

#[cold]
fn init_level_from_env() -> Level {
    let l = std::env::var("FUN3D_TELEMETRY")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Counters);
    // A racing set_level wins: only replace the unset sentinel.
    let _ = LEVEL.compare_exchange(
        LEVEL_UNSET,
        l as u8,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    decode(LEVEL.load(Ordering::Relaxed))
}

fn decode(v: u8) -> Level {
    match v {
        0 => Level::Off,
        1 => Level::Counters,
        2 => Level::Spans,
        _ => Level::Full,
    }
}

/// The active level (first call reads `FUN3D_TELEMETRY`; afterwards one
/// relaxed load).
#[inline]
pub fn level() -> Level {
    let v = LEVEL.load(Ordering::Relaxed);
    if v == LEVEL_UNSET {
        init_level_from_env()
    } else {
        decode(v)
    }
}

/// Overrides the level (tools and tests; takes effect immediately on all
/// threads).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process telemetry epoch (the first call).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One `(x, y)` observation of a named series (e.g. the residual norm
/// per pseudo-time step).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Series name.
    pub series: &'static str,
    /// Abscissa (step number, iteration, …).
    pub x: f64,
    /// Observed value.
    pub y: f64,
}

/// Ring capacity per thread, configurable via `FUN3D_TELEMETRY_RING`.
fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("FUN3D_TELEMETRY_RING")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(4096)
            .clamp(16, 1 << 22)
    })
}

/// One thread's recorder. The owning thread is the only writer of the
/// ring and (in steady state) the only locker of the mutexes, which are
/// taken once per kernel invocation — never inside inner loops.
struct ThreadCell {
    label: Mutex<String>,
    ring: OnceLock<ring::SpanRing>,
    /// Continuously-published open-span path, read by the sampler.
    slot: sampler::SpanSlot,
    counters: Mutex<CounterMap>,
    series: Mutex<Vec<SeriesPoint>>,
}

impl ThreadCell {
    fn new(label: String) -> ThreadCell {
        ThreadCell {
            label: Mutex::new(label),
            ring: OnceLock::new(),
            slot: sampler::SpanSlot::new(),
            counters: Mutex::new(CounterMap::new()),
            series: Mutex::new(Vec::new()),
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadCell>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadCell>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static CELL: std::cell::OnceCell<Arc<ThreadCell>> = const { std::cell::OnceCell::new() };
}

fn with_cell<R>(f: impl FnOnce(&ThreadCell) -> R) -> R {
    CELL.with(|slot| {
        let cell = slot.get_or_init(|| {
            let label = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("{:?}", std::thread::current().id()));
            let cell = Arc::new(ThreadCell::new(label));
            registry().lock().unwrap().push(Arc::clone(&cell));
            cell
        });
        f(cell)
    })
}

/// Labels the current thread's timeline (worker id, rank id). Reuses the
/// thread name by default; call this where threads have roles the name
/// doesn't carry.
pub fn set_thread_label(label: impl Into<String>) {
    if level() == Level::Off {
        return;
    }
    with_cell(|c| *c.label.lock().unwrap() = label.into());
}

/// An in-flight span; records into the current thread's ring on drop.
/// Inactive (and free) below the gating level.
///
/// While open, an active span is also published in the thread's
/// [`sampler::SpanSlot`] so the sampling profiler can attribute the
/// thread's time to it. The slot is single-writer, which is why `Span`
/// is `!Send`: opening and closing must happen on the same thread.
#[must_use = "a span measures the scope it is bound to; bind it to a named guard"]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    active: bool,
    /// `!Send`: the drop must run on the opening thread (slot pop and
    /// ring push are both single-writer).
    _pinned: std::marker::PhantomData<*const ()>,
}

impl Span {
    const INACTIVE: Span = Span {
        name: "",
        start_ns: 0,
        active: false,
        _pinned: std::marker::PhantomData,
    };
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        with_cell(|c| {
            c.slot.pop();
            c.ring
                .get_or_init(|| ring::SpanRing::new(ring_capacity()))
                .push(SpanEvent {
                    name: self.name,
                    start_ns: self.start_ns,
                    dur_ns,
                })
        });
    }
}

fn open_span(name: &'static str) -> Span {
    with_cell(|c| c.slot.push(name));
    Span {
        name,
        start_ns: now_ns(),
        active: true,
        _pinned: std::marker::PhantomData,
    }
}

/// Opens a kernel-level span (recorded at [`Level::Spans`] and up).
#[inline]
pub fn span(name: &'static str) -> Span {
    if level() < Level::Spans {
        return Span::INACTIVE;
    }
    open_span(name)
}

/// Opens a high-frequency span (per-chunk, per-level) recorded only at
/// [`Level::Full`].
#[inline]
pub fn fine_span(name: &'static str) -> Span {
    if level() < Level::Full {
        return Span::INACTIVE;
    }
    open_span(name)
}

/// Accumulates performance-model counters for a kernel on the current
/// thread (recorded at [`Level::Counters`] and up). Call once per kernel
/// invocation with analytic totals — never from inner loops.
#[inline]
pub fn record_kernel(name: &'static str, c: KernelCounts) {
    if level() < Level::Counters {
        return;
    }
    with_cell(|cell| cell.counters.lock().unwrap().add(name, c));
}

/// Appends an `(x, y)` observation to a named series (recorded at
/// [`Level::Counters`] and up).
#[inline]
pub fn series_push(series: &'static str, x: f64, y: f64) {
    if level() < Level::Counters {
        return;
    }
    with_cell(|cell| cell.series.lock().unwrap().push(SeriesPoint { series, x, y }));
}

/// The current thread's accumulated counters (its own cell only — useful
/// for per-rank assertions where global state would mix concurrent
/// actors).
pub fn local_counters() -> CounterMap {
    with_cell(|cell| cell.counters.lock().unwrap().clone())
}

/// One thread's collected telemetry.
#[derive(Clone, Debug)]
pub struct ThreadProfile {
    /// Thread label (name, worker id, or rank id).
    pub label: String,
    /// Recorded spans, oldest first.
    pub spans: Vec<SpanEvent>,
    /// Spans lost to ring wraparound.
    pub dropped_spans: u64,
    /// Kernel counters.
    pub counters: CounterMap,
    /// Series observations.
    pub series: Vec<SeriesPoint>,
}

/// A merged view over every registered thread recorder.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Per-thread profiles in registration order.
    pub threads: Vec<ThreadProfile>,
}

impl Snapshot {
    /// All counters merged across threads.
    pub fn merged_counters(&self) -> CounterMap {
        let mut total = CounterMap::new();
        for t in &self.threads {
            total.merge(&t.counters);
        }
        total
    }

    /// A series merged across threads, sorted by `x`.
    pub fn series(&self, name: &str) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> = self
            .threads
            .iter()
            .flat_map(|t| t.series.iter())
            .filter(|p| p.series == name)
            .map(|p| (p.x, p.y))
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        pts
    }

    /// `(name, total seconds, count)` over all spans, busiest first.
    pub fn span_totals(&self) -> Vec<(&'static str, f64, u64)> {
        let mut acc: Vec<(&'static str, f64, u64)> = Vec::new();
        for ev in self.threads.iter().flat_map(|t| t.spans.iter()) {
            match acc.iter_mut().find(|(n, _, _)| *n == ev.name) {
                Some(e) => {
                    e.1 += ev.dur_ns as f64 * 1e-9;
                    e.2 += 1;
                }
                None => acc.push((ev.name, ev.dur_ns as f64 * 1e-9, 1)),
            }
        }
        acc.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        acc
    }

    /// Per-thread `(label, busy seconds, span count)` for spans whose
    /// name matches `name` exactly; threads without such spans are
    /// omitted.
    pub fn per_thread_span_seconds(&self, name: &str) -> Vec<(String, f64, u64)> {
        self.threads
            .iter()
            .filter_map(|t| {
                let (mut secs, mut n) = (0.0f64, 0u64);
                for ev in &t.spans {
                    if ev.name == name {
                        secs += ev.dur_ns as f64 * 1e-9;
                        n += 1;
                    }
                }
                (n > 0).then(|| (t.label.clone(), secs, n))
            })
            .collect()
    }

    /// Total spans lost to ring wraparound across threads.
    pub fn dropped_spans(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped_spans).sum()
    }
}

/// Collects every registered thread recorder into a [`Snapshot`].
///
/// Safe to call at any time; span rings of still-running threads are
/// read with the single-writer protocol (in-flight slots are trimmed),
/// but for complete timelines collect at a quiescent point (pool idle,
/// ranks joined).
pub fn snapshot() -> Snapshot {
    let cells = registry().lock().unwrap();
    let threads = cells
        .iter()
        .map(|c| {
            let (spans, dropped_spans) = match c.ring.get() {
                Some(r) => r.collect(),
                None => (Vec::new(), 0),
            };
            ThreadProfile {
                label: c.label.lock().unwrap().clone(),
                spans,
                dropped_spans,
                counters: c.counters.lock().unwrap().clone(),
                series: c.series.lock().unwrap().clone(),
            }
        })
        .collect();
    Snapshot { threads }
}

/// Clears all recorded data (rings, counters, series) on every
/// registered recorder. Labels and registrations survive. Call between
/// measurement phases of a tool, at quiescent points only.
pub fn reset() {
    let cells = registry().lock().unwrap();
    for c in cells.iter() {
        if let Some(r) = c.ring.get() {
            r.clear();
        }
        c.counters.lock().unwrap().clear();
        c.series.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prop_assert, prop_assert_eq, prop_cases};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    /// Tests that mutate the global level serialize through this lock and
    /// restore the default, so the rest of the binary's parallel tests
    /// keep recording under `Counters`.
    static LEVEL_LOCK: Mutex<()> = Mutex::new(());

    fn with_level<R>(l: Level, f: impl FnOnce() -> R) -> R {
        let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_level(l);
        let out = f();
        set_level(Level::Counters);
        out
    }

    // -- allocation-counting instrumentation for the zero-alloc test --

    struct CountingAlloc;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static COUNTING: CountingAlloc = CountingAlloc;

    fn thread_allocs() -> u64 {
        ALLOCS.with(|c| c.get())
    }

    #[test]
    fn off_mode_is_zero_allocation_and_records_nothing() {
        with_level(Level::Off, || {
            // Warm lazy globals (epoch, level, this thread's cell) before
            // measuring, then hammer every instrumentation entry point.
            now_ns();
            record_kernel("warm", KernelCounts::default());
            let before_counters = local_counters();
            let a0 = thread_allocs();
            for i in 0..10_000u64 {
                let _s = span("flux");
                let _f = fine_span("chunk");
                record_kernel("flux", KernelCounts::once(i, 64, 8, 345));
                series_push("residual", i as f64, 1.0 / (i + 1) as f64);
                set_thread_label("should-not-stick");
            }
            let a1 = thread_allocs();
            assert_eq!(a1 - a0, 0, "off-mode instrumentation allocated");
            // …and nothing was recorded either
            assert_eq!(
                local_counters().entries().len(),
                before_counters.entries().len()
            );
        });
    }

    #[test]
    fn spans_record_on_own_thread() {
        with_level(Level::Spans, || {
            set_thread_label("span-test-thread");
            {
                let _s = span("span-test-kernel");
                std::hint::black_box(());
            }
            let snap = snapshot();
            let me = snap
                .threads
                .iter()
                .find(|t| t.label == "span-test-thread")
                .expect("own thread in snapshot");
            assert!(me.spans.iter().any(|e| e.name == "span-test-kernel"));
            let totals = snap.span_totals();
            let k = totals
                .iter()
                .find(|(n, _, _)| *n == "span-test-kernel")
                .unwrap();
            assert!(k.2 >= 1);
            let per = snap.per_thread_span_seconds("span-test-kernel");
            assert!(per.iter().any(|(l, _, n)| l == "span-test-thread" && *n >= 1));
        });
    }

    #[test]
    fn fine_spans_gated_on_full() {
        with_level(Level::Spans, || {
            set_thread_label("fine-gate-thread");
            {
                let _f = fine_span("fine-gate-span");
            }
            let snap = snapshot();
            assert!(
                !snap
                    .threads
                    .iter()
                    .flat_map(|t| t.spans.iter())
                    .any(|e| e.name == "fine-gate-span"),
                "fine span must not record below Full"
            );
        });
        with_level(Level::Full, || {
            {
                let _f = fine_span("fine-gate-span");
            }
            let snap = snapshot();
            assert!(snap
                .threads
                .iter()
                .flat_map(|t| t.spans.iter())
                .any(|e| e.name == "fine-gate-span"));
        });
    }

    #[test]
    fn counters_record_at_default_level_and_series_sort() {
        // default level (Counters) — no with_level needed, but take the
        // lock so an Off-mode test can't race us.
        let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_level(Level::Counters);
        record_kernel("ctr-test-kernel", KernelCounts::once(10, 100, 20, 500));
        record_kernel("ctr-test-kernel", KernelCounts::once(10, 100, 20, 500));
        series_push("ctr-test-series", 2.0, 20.0);
        series_push("ctr-test-series", 1.0, 10.0);
        let local = local_counters();
        let c = local.get("ctr-test-kernel").unwrap();
        assert_eq!(c.calls, 2);
        assert_eq!(c.items, 20);
        assert_eq!(c.bytes(), 240);
        let snap = snapshot();
        let pts = snap.series("ctr-test-series");
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0), "series sorted by x");
        let total = snap.merged_counters();
        assert!(total.get("ctr-test-kernel").unwrap().calls >= 2);
    }

    #[test]
    fn level_parse_and_ordering() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("COUNTERS"), Some(Level::Counters));
        assert_eq!(Level::parse(" spans "), Some(Level::Spans));
        assert_eq!(Level::parse("full"), Some(Level::Full));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Off < Level::Counters);
        assert!(Level::Spans < Level::Full);
    }

    prop_cases! {
        /// Splitting a record stream across real threads and merging the
        /// per-thread profiles yields exactly the serial profile.
        fn merged_thread_profiles_equal_serial(g, cases = 24) {
            const NAMES: [&str; 4] = ["flux", "gradient", "ilu", "trsv"];
            let nrec = g.usize_range(1, 40);
            let recs: Vec<(&'static str, KernelCounts)> = (0..nrec)
                .map(|_| {
                    let name = NAMES[g.usize_range(0, NAMES.len() - 1)];
                    let c = KernelCounts::once(
                        g.usize_range(0, 1000) as u64,
                        g.usize_range(0, 1 << 20) as u64,
                        g.usize_range(0, 1 << 16) as u64,
                        g.usize_range(0, 1 << 20) as u64,
                    );
                    (name, c)
                })
                .collect();
            let nthreads = g.usize_range(1, 4);

            // serial reference
            let mut serial = CounterMap::new();
            for (n, c) in &recs {
                serial.add(n, *c);
            }

            // real threads, each recording its share through the public
            // API into its own cell; collected via each thread's local
            // view (the global snapshot would include other tests'
            // records running concurrently in this binary)
            let mut merged = CounterMap::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..nthreads {
                    let recs = &recs;
                    handles.push(scope.spawn(move || {
                        let mut base = local_counters();
                        for (i, (n, c)) in recs.iter().enumerate() {
                            if i % nthreads == t {
                                record_kernel(n, *c);
                            }
                        }
                        // delta = what this thread just recorded
                        let now = local_counters();
                        let mut delta = CounterMap::new();
                        for (name, c) in now.entries() {
                            let mut d = *c;
                            if let Some(b) = base.get(name) {
                                d.calls -= b.calls;
                                d.items -= b.items;
                                d.bytes_read -= b.bytes_read;
                                d.bytes_written -= b.bytes_written;
                                d.flops -= b.flops;
                            }
                            if d.calls > 0 {
                                delta.add(name, d);
                            }
                        }
                        base.clear();
                        delta
                    }));
                }
                for h in handles {
                    merged.merge(&h.join().unwrap());
                }
            });
            prop_assert_eq!(merged.entries(), serial.entries());
            prop_assert!(true);
        }
    }
}
