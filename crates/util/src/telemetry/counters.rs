//! The counter vocabulary of the performance model.
//!
//! The paper's analysis (Fig. 6's achieved-vs-STREAM bandwidth, Table 3's
//! bytes-per-edge model) needs, per kernel: how many items it processed
//! (edges, block rows, messages), how many bytes it moved, and how many
//! floating-point operations it performed. [`KernelCounts`] is that
//! record; instrumentation sites accumulate one per kernel name, and the
//! report layer derives arithmetic intensity (flop/byte) and achieved
//! bandwidth (GB/s over a measured wall time) from the totals, which are
//! then compared against a machine's STREAM number
//! (`fun3d_machine::MachineSpec::stream_gbs`).

/// Monotonic counters for one kernel (or one communication class).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounts {
    /// Kernel invocations.
    pub calls: u64,
    /// Work items processed: edges for edge loops, block rows for the
    /// recurrences, vector elements for primitives, messages for comm.
    pub items: u64,
    /// Bytes read (model traffic: gathers, streamed operands, received
    /// payloads).
    pub bytes_read: u64,
    /// Bytes written (scatters, streamed results, sent payloads).
    pub bytes_written: u64,
    /// Floating-point operations.
    pub flops: u64,
}

impl KernelCounts {
    /// A single-invocation record (the common case at a call site).
    pub fn once(items: u64, bytes_read: u64, bytes_written: u64, flops: u64) -> KernelCounts {
        KernelCounts {
            calls: 1,
            items,
            bytes_read,
            bytes_written,
            flops,
        }
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in flop/byte (0 when no traffic was counted).
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.bytes();
        if b == 0 {
            0.0
        } else {
            self.flops as f64 / b as f64
        }
    }

    /// Achieved bandwidth in GB/s given the kernel's measured wall time.
    pub fn achieved_gbs(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.bytes() as f64 / 1e9 / seconds
        }
    }

    /// Achieved flop rate in Gflop/s given the measured wall time.
    pub fn achieved_gflops(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.flops as f64 / 1e9 / seconds
        }
    }

    /// Accumulates another record into this one.
    pub fn add(&mut self, other: &KernelCounts) {
        self.calls += other.calls;
        self.items += other.items;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.flops += other.flops;
    }
}

/// A small name → [`KernelCounts`] map. Kernels number in the tens, so a
/// sorted vector beats a hash map for determinism (reports iterate in
/// stable name order) and for merge cost.
#[derive(Clone, Debug, Default)]
pub struct CounterMap {
    entries: Vec<(&'static str, KernelCounts)>,
}

impl CounterMap {
    /// An empty map.
    pub fn new() -> CounterMap {
        CounterMap::default()
    }

    /// Accumulates `c` into the named kernel's counters.
    pub fn add(&mut self, name: &'static str, c: KernelCounts) {
        match self.entries.binary_search_by(|(k, _)| k.cmp(&name)) {
            Ok(i) => self.entries[i].1.add(&c),
            Err(i) => self.entries.insert(i, (name, c)),
        }
    }

    /// The counters for `name`, if any were recorded.
    pub fn get(&self, name: &str) -> Option<&KernelCounts> {
        self.entries
            .binary_search_by(|(k, _)| (*k).cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// All `(name, counters)` entries in name order.
    pub fn entries(&self) -> &[(&'static str, KernelCounts)] {
        &self.entries
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another map into this one (used to combine per-thread
    /// recorders into the run total).
    pub fn merge(&mut self, other: &CounterMap) {
        for (name, c) in &other.entries {
            self.add(name, *c);
        }
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let c = KernelCounts::once(1000, 6_000_000, 2_000_000, 4_000_000);
        assert_eq!(c.bytes(), 8_000_000);
        assert!((c.arithmetic_intensity() - 0.5).abs() < 1e-12);
        assert!((c.achieved_gbs(0.001) - 8.0).abs() < 1e-12);
        assert!((c.achieved_gflops(0.001) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_traffic_and_zero_time_are_safe() {
        let c = KernelCounts::default();
        assert_eq!(c.arithmetic_intensity(), 0.0);
        assert_eq!(c.achieved_gbs(0.0), 0.0);
        assert_eq!(c.achieved_gflops(-1.0), 0.0);
    }

    #[test]
    fn map_accumulates_and_sorts() {
        let mut m = CounterMap::new();
        m.add("trsv", KernelCounts::once(5, 50, 5, 500));
        m.add("flux", KernelCounts::once(10, 100, 10, 1000));
        m.add("flux", KernelCounts::once(10, 100, 10, 1000));
        let names: Vec<_> = m.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["flux", "trsv"]);
        let flux = m.get("flux").unwrap();
        assert_eq!(flux.calls, 2);
        assert_eq!(flux.items, 20);
        assert_eq!(flux.bytes(), 220);
        assert!(m.get("ilu").is_none());
    }

    #[test]
    fn merge_equals_serial_accumulation() {
        let mut serial = CounterMap::new();
        let mut a = CounterMap::new();
        let mut b = CounterMap::new();
        let recs = [
            ("flux", KernelCounts::once(3, 30, 3, 300)),
            ("ilu", KernelCounts::once(7, 70, 7, 700)),
            ("flux", KernelCounts::once(1, 10, 1, 100)),
        ];
        for (i, (n, c)) in recs.iter().enumerate() {
            serial.add(n, *c);
            if i % 2 == 0 {
                a.add(n, *c);
            } else {
                b.add(n, *c);
            }
        }
        let mut merged = CounterMap::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.entries(), serial.entries());
    }
}
