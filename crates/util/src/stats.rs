//! Summary statistics over repeated measurements.

/// Summary of a sample of `f64` observations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 when n < 2).
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (average of middle two for even n).
    pub median: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Some(Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }
}

/// Measures a closure `reps` times and returns the per-run seconds.
///
/// One warm-up run is executed first and discarded so that lazily
/// initialized state (page faults, buffer growth) does not pollute the
/// sample.
pub fn measure_secs(reps: usize, mut f: impl FnMut()) -> Vec<f64> {
    f(); // warm-up
    let mut out = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        out.push(t.elapsed().as_secs_f64());
    }
    out
}

/// Geometric mean; `None` when empty or any element is non-positive.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // sample stddev of 1..4 = sqrt(5/3)
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_element() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn median_odd() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn geomean_known() {
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[1.0, 0.0]).is_none());
    }

    #[test]
    fn measure_returns_requested_reps() {
        let times = measure_secs(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert_eq!(times.len(), 3);
        assert!(times.iter().all(|&t| t >= 0.0));
    }
}
