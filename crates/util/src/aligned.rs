//! Cache-line aligned growable buffers.
//!
//! SIMD kernels (and the BCSR block kernels) want their base pointers
//! aligned to at least the SIMD width; aligning to a full 64-byte cache
//! line additionally keeps 4x4 f64 half-blocks from straddling lines, the
//! property the paper relies on for "2 cache lines per block" BCSR loads.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};

const ALIGN: usize = 64;

/// A fixed-capacity, 64-byte-aligned vector of `f64`.
///
/// Unlike `Vec<f64>` the allocation is guaranteed cache-line aligned and is
/// zero-initialized up front; the length is fixed at construction. This is
/// the "workhorse buffer" shape recommended for hot kernels: allocate once,
/// reuse across iterations.
pub struct AlignedVec {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: AlignedVec owns its buffer exclusively; f64 is Send + Sync.
unsafe impl Send for AlignedVec {}
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocates a zeroed, aligned buffer of `len` doubles.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedVec {
                ptr: std::ptr::NonNull::<f64>::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has nonzero size (len > 0).
        let raw = unsafe { alloc_zeroed(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        AlignedVec {
            ptr: raw.cast::<f64>(),
            len,
        }
    }

    /// Builds an aligned copy of a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut v = Self::zeroed(xs.len());
        v.copy_from_slice(xs);
        v
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<f64>(), ALIGN)
            .expect("aligned buffer layout")
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resets all elements to zero.
    pub fn fill_zero(&mut self) {
        self.iter_mut().for_each(|x| *x = 0.0);
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        Self::from_slice(self)
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated with the identical layout in `zeroed`.
            unsafe { dealloc(self.ptr.cast(), Self::layout(self.len)) };
        }
    }
}

impl Deref for AlignedVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        // SAFETY: ptr valid for len elements for the lifetime of self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        // SAFETY: exclusive access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedVec").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_aligned() {
        let v = AlignedVec::zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn empty_buffer() {
        let v = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn roundtrip_from_slice() {
        let src: Vec<f64> = (0..37).map(|i| i as f64 * 1.5).collect();
        let v = AlignedVec::from_slice(&src);
        assert_eq!(&v[..], &src[..]);
    }

    #[test]
    fn mutation_and_fill_zero() {
        let mut v = AlignedVec::zeroed(8);
        v[3] = 5.0;
        assert_eq!(v[3], 5.0);
        v.fill_zero();
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedVec::from_slice(&[1.0, 2.0]);
        let b = a.clone();
        a[0] = 9.0;
        assert_eq!(b[0], 1.0);
    }

    #[test]
    fn many_sizes_alignment() {
        for len in [1, 2, 3, 7, 8, 9, 63, 64, 65, 4097] {
            let v = AlignedVec::zeroed(len);
            assert_eq!(v.as_ptr() as usize % ALIGN, 0, "len={len}");
        }
    }
}
