//! Overhead guard for the always-on metrics plane.
//!
//! The metrics contract mirrors the flight recorder's: on by default
//! and free. An enabled histogram record is one bucket index
//! computation plus four uncontended atomic RMWs on this thread's own
//! shard; a disabled one is a single relaxed load of the env gate and
//! nothing else — no allocation, no shard registration, no stores.
//! This test measures a streaming kernel that records one histogram
//! sample per invocation — a far higher record rate than the real
//! per-request / per-step sources — with metrics disabled and enabled,
//! and fails if the enabled median leaves the disabled run's noise
//! band. The allocation half of the claim is checked exactly with a
//! counting allocator. The matching CSV rows come from the `metrics`
//! group in `crates/bench/benches/kernels.rs`.

use fun3d_util::microbench::{Bench, SampleConfig};
use fun3d_util::telemetry::metrics;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Both tests flip the process-wide metrics gate; serialize them so
/// the parallel test runner cannot interleave the flips.
static GATE_LOCK: Mutex<()> = Mutex::new(());

/// Counts every heap allocation in the process so the "zero-alloc when
/// disabled" claim is exact rather than inferred from timing.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A memory-bound stand-in for a solver kernel (the util crate cannot
/// see the flux kernels): one fused triad pass over `x`/`y`.
fn triad(x: &mut [f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (xi, yi) in x.iter_mut().zip(y) {
        *xi = 0.999 * *xi + 0.5 * *yi;
        acc += *xi;
    }
    acc
}

fn measure(enabled: bool) -> (f64, f64) {
    metrics::set_enabled(enabled);
    let n = 16_384;
    let mut x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.02).cos()).collect();
    let h = metrics::histogram("metrics_overhead.triad_ns");
    let mut bench = Bench::with_config(SampleConfig {
        warmup: Duration::from_millis(10),
        min_sample_time: Duration::from_millis(2),
        sample_size: 15,
    });
    let mut g = bench.group("metrics_overhead");
    let id = if enabled { "on" } else { "off" };
    g.bench_function(id, |b| {
        b.iter(|| {
            h.record(1_234);
            std::hint::black_box(triad(&mut x, &y))
        })
    });
    g.finish();
    let rec = &bench.records()[0];
    (rec.median_s, rec.mad_s)
}

#[test]
fn always_on_recording_stays_within_kernel_noise() {
    let _gate = GATE_LOCK.lock().unwrap();
    // Interleave-free A/B on the same process and data. Alternating the
    // order (off first) gives the enabled run the warmer cache — the
    // conservative direction for this guard.
    let (med_off, mad_off) = measure(false);
    let (med_on, mad_on) = measure(true);
    metrics::set_enabled(true); // restore the default for other tests

    // Noise band: 25% of the disabled median plus a generous multiple of
    // both runs' MADs. One record is four uncontended RMWs against a
    // 16k-element streaming pass, far below 1% in practice; the band is
    // wide only to keep a shared, single-core CI container from flaking.
    let bound = med_off * 1.25 + 12.0 * (mad_off + mad_on);
    assert!(
        med_on <= bound,
        "enabled metrics recording left the noise band: off {:.3e}s (mad {:.1e}), \
         on {:.3e}s (mad {:.1e}), bound {:.3e}s",
        med_off,
        mad_off,
        med_on,
        mad_on,
        bound
    );
}

#[test]
fn disabled_record_is_one_relaxed_load_and_zero_alloc() {
    let _gate = GATE_LOCK.lock().unwrap();
    // FUN3D_METRICS=off must make every record path a single relaxed
    // gate load: nothing lands in any shard, no counter moves, and —
    // checked exactly via the counting allocator — not one heap
    // allocation happens on the record path.
    let h = metrics::histogram("metrics_overhead.disabled_probe_ns");
    let c = metrics::counter("metrics_overhead.disabled_probe_count");
    let g = metrics::gauge("metrics_overhead.disabled_probe_gauge");
    // Warm both thread-local caches while enabled so the disabled loop
    // below measures the steady state, not first-touch registration.
    metrics::record_ns("metrics_overhead.disabled_named_ns", 1);
    h.record(1);
    let warm = h.snapshot("probe").count;

    metrics::set_enabled(false);
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        h.record(i);
        c.incr();
        g.set(i);
        metrics::record_ns("metrics_overhead.disabled_named_ns", i);
    }
    let grew = ALLOCS.load(Ordering::Relaxed) - before;
    metrics::set_enabled(true);

    assert_eq!(grew, 0, "disabled record path allocated {grew} times");
    assert_eq!(
        h.snapshot("probe").count,
        warm,
        "disabled histogram record landed a sample"
    );
    assert_eq!(c.value(), 0, "disabled counter moved");
    assert_eq!(g.value(), 0, "disabled gauge moved");
}
