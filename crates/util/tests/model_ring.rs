//! Model check for the telemetry span ring's single-writer seqlock-style
//! publication protocol. Compiled only under `--cfg fun3d_check`, where
//! the ring's atomics are fun3d-check's tracked types.
//!
//! The ring's soundness claim is sharp: `collect` reconstructs `&'static
//! str` names from raw pointer/length pairs read out of atomics, and the
//! only thing standing between that and undefined behaviour is the
//! stability filter (an index is surfaced only if the second head read
//! proves its slot cannot have been mid-overwrite). The positive model
//! lets the checker try every interleaving of a concurrent push/collect
//! pair; the mutant downgrades the head publication to `Relaxed` and the
//! checker must find the schedule where the collector observes a slot the
//! writer never published.
#![cfg(fun3d_check)]

use fun3d_check::shim::{spin_hint, AtomicU64, Ordering};
use fun3d_check::{explore, thread, Config, FailureKind};
use fun3d_util::telemetry::ring::SpanRing;
use fun3d_util::telemetry::SpanEvent;
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        max_threads: 4,
        preemption_bound: Some(2),
        max_schedules: 400_000,
        history: 3,
    }
}

fn ev(name: &'static str, start_ns: u64) -> SpanEvent {
    SpanEvent {
        name,
        start_ns,
        dur_ns: 0,
    }
}

#[test]
fn concurrent_collect_only_surfaces_stable_consistent_events() {
    // Writer pushes two named events while the collector snapshots
    // concurrently; afterwards a quiescent (join-ordered) collect checks
    // the stable tail. Every surfaced event must be an exact
    // (name, start) pair that was actually pushed — a mismatched pair
    // would mean the stability filter surfaced a torn slot, and the str
    // reconstruction it guards would be undefined behaviour in
    // production. The checker additionally race-checks nothing here
    // because every shared access is atomic — the property under test is
    // the *value* soundness of the Acquire/Release head protocol.
    let report = explore(&cfg(), || {
        let ring = Arc::new(SpanRing::new(2));
        let r2 = Arc::clone(&ring);
        let writer = thread::spawn(move || {
            r2.push(ev("a", 1));
            r2.push(ev("bb", 2));
        });
        let (events, _dropped) = ring.collect();
        for e in &events {
            assert!(
                (e.name == "a" && e.start_ns == 1) || (e.name == "bb" && e.start_ns == 2),
                "torn or unpublished slot surfaced: {:?}/{}",
                e.name,
                e.start_ns
            );
        }
        writer.join();
        // Join-ordered collect: capacity 2 keeps indices {0, 1}, and the
        // stability trim conservatively discards the oldest retained
        // index, so exactly event 1 ("bb") survives.
        let (events, dropped) = ring.collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "bb");
        assert_eq!(events[0].start_ns, 2);
        assert_eq!(dropped, 1);
    });
    // Schedule count quoted in EXPERIMENTS.md; visible with --nocapture.
    eprintln!("explored {} schedules (exhaustive: {})", report.schedules, report.exhaustive);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhaustive, "budget too small: {}", report.schedules);
    assert!(report.schedules >= 2);
}

#[test]
fn relaxed_head_publication_is_caught() {
    // Mutant skeleton of `SpanRing::push` with the head store downgraded
    // to Relaxed. The payload uses plain u64 pairs instead of str parts
    // so the bug manifests as a caught assertion (a torn/unpublished
    // observation), not as actual undefined behaviour inside the test.
    let report = explore(&cfg(), || {
        let slot = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
        let head = Arc::new(AtomicU64::new(0));
        let (s2, h2) = (Arc::clone(&slot), Arc::clone(&head));
        let writer = thread::spawn(move || {
            s2[0].store(21, Ordering::Relaxed);
            s2[1].store(42, Ordering::Relaxed);
            h2.store(1, Ordering::Relaxed); // BUG: SpanRing::push uses Release
        });
        while head.load(Ordering::Acquire) != 1 {
            spin_hint();
        }
        let a = slot[0].load(Ordering::Relaxed);
        let b = slot[1].load(Ordering::Relaxed);
        assert!(a == 21 && b == 42, "collector saw unpublished slot: ({a}, {b})");
        writer.join();
    });
    let f = report.failure.expect("checker must catch the relaxed head");
    assert_eq!(f.kind, FailureKind::Panic, "{}", f.message);
    assert!(!f.schedule.is_empty());
}
