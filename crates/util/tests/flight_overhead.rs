//! Overhead guard for the always-on flight recorder.
//!
//! The recorder's contract is "on by default and free": an enabled
//! `emit` is ten relaxed stores plus one release store into a
//! thread-local ring, invisible next to any memory-bound solver kernel.
//! This test measures a streaming kernel that emits one flight event
//! per invocation — a far higher event rate than the real per-step /
//! per-solve sources — with the recorder disabled and enabled, and
//! fails if the enabled median leaves the disabled run's noise band.
//! The matching CSV rows come from the `flight` group in
//! `crates/bench/benches/kernels.rs`.

use fun3d_util::microbench::{Bench, SampleConfig};
use fun3d_util::telemetry::flight;
use std::time::Duration;

/// A memory-bound stand-in for a solver kernel (the util crate cannot
/// see the flux kernels): one fused triad pass over `x`/`y`.
fn triad(x: &mut [f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (xi, yi) in x.iter_mut().zip(y) {
        *xi = 0.999 * *xi + 0.5 * *yi;
        acc += *xi;
    }
    acc
}

fn measure(enabled: bool) -> (f64, f64) {
    flight::set_enabled(enabled);
    let n = 16_384;
    let mut x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.02).cos()).collect();
    let mut bench = Bench::with_config(SampleConfig {
        warmup: Duration::from_millis(10),
        min_sample_time: Duration::from_millis(2),
        sample_size: 15,
    });
    let mut g = bench.group("flight_overhead");
    let id = if enabled { "on" } else { "off" };
    g.bench_function(id, |b| {
        b.iter(|| {
            flight::emit(flight::EventKind::PtcStep {
                step: 1,
                res: 1.0,
                dt: 2.0,
                gmres_iters: 3,
            });
            std::hint::black_box(triad(&mut x, &y))
        })
    });
    g.finish();
    let rec = &bench.records()[0];
    (rec.median_s, rec.mad_s)
}

#[test]
fn always_on_recording_stays_within_kernel_noise() {
    // Interleave-free A/B on the same process and data. Alternating the
    // order (off first) gives the enabled run the warmer cache — the
    // conservative direction for this guard.
    let (med_off, mad_off) = measure(false);
    let (med_on, mad_on) = measure(true);
    flight::set_enabled(true); // restore the default for other tests

    // Noise band: 25% of the disabled median plus a generous multiple of
    // both runs' MADs. One emit is ~11 uncontended stores against a
    // 16k-element streaming pass, far below 1% in practice; the band is
    // wide only to keep a shared, single-core CI container from flaking.
    let bound = med_off * 1.25 + 12.0 * (mad_off + mad_on);
    assert!(
        med_on <= bound,
        "enabled flight recording left the noise band: off {:.3e}s (mad {:.1e}), \
         on {:.3e}s (mad {:.1e}), bound {:.3e}s",
        med_off,
        mad_off,
        med_on,
        mad_on,
        bound
    );
}

#[test]
fn disabled_emit_is_a_single_gate_load() {
    // Sanity on the other side: with recording off, nothing lands in
    // this thread's ring (the gate is checked before the ring exists).
    flight::set_enabled(false);
    let before = flight::snapshot().events.len();
    for _ in 0..100 {
        flight::emit(flight::EventKind::RegionSummary {
            regions: 1,
            barriers: 2,
        });
    }
    let after = flight::snapshot().events.len();
    flight::set_enabled(true);
    assert_eq!(before, after, "disabled emit must record nothing");
}
