//! Model check for the flight recorder ring's single-writer
//! seqlock-style publication protocol. Compiled only under
//! `--cfg fun3d_check`, where the ring's atomics are fun3d-check's
//! tracked types.
//!
//! The flight ring reuses the span ring's discipline — relaxed slot
//! stores, one Release head store, double-Acquire collect with a
//! stability trim — over a wider, integer-only slot. A torn slot here
//! cannot cause undefined behaviour (no pointers are reconstructed),
//! but it *would* fabricate solver history: a dump is trusted evidence
//! of what a failed run did, so a collector surfacing an unpublished or
//! half-overwritten event is a correctness bug. The positive model lets
//! the checker try every interleaving of a concurrent push/collect
//! pair; the mutant downgrades the head publication to `Relaxed` and
//! the checker must find the schedule where the collector observes
//! payload words the writer never published.
#![cfg(fun3d_check)]

use fun3d_check::shim::{spin_hint, AtomicU64, Ordering};
use fun3d_check::{explore, thread, Config, FailureKind};
use fun3d_util::telemetry::flight::{FlightRing, RawEvent};
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        max_threads: 4,
        preemption_bound: Some(2),
        max_schedules: 400_000,
        history: 3,
    }
}

/// An event whose every word is derived from `seed`, so a mixed slot
/// (words from two different pushes) is detectable by inspection.
fn ev(seed: u64) -> RawEvent {
    RawEvent {
        kind: seed,
        t_ns: seed * 10,
        rank: seed * 100,
        solve: seed * 1000,
        payload: std::array::from_fn(|k| seed * 10_000 + k as u64),
    }
}

#[test]
fn concurrent_collect_only_surfaces_stable_consistent_events() {
    // Writer pushes two events while the collector snapshots
    // concurrently; afterwards a quiescent (join-ordered) collect checks
    // the stable tail. Every surfaced event must equal one of the pushed
    // events *word for word* — a mixed slot would mean the stability
    // filter surfaced a torn write, i.e. a dump could contain solver
    // history that never happened.
    let report = explore(&cfg(), || {
        let ring = Arc::new(FlightRing::new(2));
        let r2 = Arc::clone(&ring);
        let writer = thread::spawn(move || {
            r2.push(ev(1));
            r2.push(ev(2));
        });
        let (events, _dropped) = ring.collect();
        for e in &events {
            assert!(
                *e == ev(1) || *e == ev(2),
                "torn or unpublished slot surfaced: {e:?}"
            );
        }
        writer.join();
        // Join-ordered collect: capacity 2 keeps indices {0, 1}, and the
        // stability trim conservatively discards the oldest retained
        // index, so exactly event 2 survives.
        let (events, dropped) = ring.collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0], ev(2));
        assert_eq!(dropped, 1);
    });
    // Schedule count quoted in EXPERIMENTS.md; visible with --nocapture.
    eprintln!(
        "explored {} schedules (exhaustive: {})",
        report.schedules, report.exhaustive
    );
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhaustive, "budget too small: {}", report.schedules);
    assert!(report.schedules >= 2);
}

#[test]
fn relaxed_head_publication_is_caught() {
    // Mutant skeleton of `FlightRing::push` with the head store
    // downgraded to Relaxed: two payload words stand in for the ten slot
    // words. The checker must find the schedule where the collector's
    // Acquire head load is satisfied but the relaxed slot stores are not
    // yet visible.
    let report = explore(&cfg(), || {
        let slot = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
        let head = Arc::new(AtomicU64::new(0));
        let (s2, h2) = (Arc::clone(&slot), Arc::clone(&head));
        let writer = thread::spawn(move || {
            s2[0].store(7, Ordering::Relaxed);
            s2[1].store(77, Ordering::Relaxed);
            h2.store(1, Ordering::Relaxed); // BUG: FlightRing::push uses Release
        });
        while head.load(Ordering::Acquire) != 1 {
            spin_hint();
        }
        let a = slot[0].load(Ordering::Relaxed);
        let b = slot[1].load(Ordering::Relaxed);
        assert!(a == 7 && b == 77, "collector saw unpublished slot: ({a}, {b})");
        writer.join();
    });
    let f = report.failure.expect("checker must catch the relaxed head");
    assert_eq!(f.kind, FailureKind::Panic, "{}", f.message);
    assert!(!f.schedule.is_empty());
}

#[test]
fn wraparound_drop_accounting_is_exact_under_concurrency() {
    // Three pushes into a capacity-2 ring with a concurrent collector:
    // whatever prefix the collector observes, events + dropped must
    // account for every push it saw published (the dump's `dropped`
    // field is part of the artifact contract).
    let report = explore(&cfg(), || {
        let ring = Arc::new(FlightRing::new(2));
        let r2 = Arc::clone(&ring);
        let writer = thread::spawn(move || {
            r2.push(ev(1));
            r2.push(ev(2));
            r2.push(ev(3));
        });
        let (events, dropped) = ring.collect();
        assert!(events.len() as u64 + dropped <= 3);
        for e in &events {
            assert!(*e == ev(1) || *e == ev(2) || *e == ev(3), "torn slot: {e:?}");
        }
        writer.join();
        let (events, dropped) = ring.collect();
        assert_eq!(events.len() as u64 + dropped, 3);
        assert_eq!(events.last(), Some(&ev(3)));
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhaustive, "budget too small: {}", report.schedules);
}
