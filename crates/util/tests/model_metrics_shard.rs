//! Model check for the metrics histogram shard's single-writer
//! publication protocol. Compiled only under `--cfg fun3d_check`,
//! where [`HistShard`]'s bucket and count atomics are fun3d-check's
//! tracked types.
//!
//! The shard inverts the flight ring's discipline: relaxed bucket
//! increments, one Release count increment, and a collector that
//! Acquire-loads the count *first*, then the buckets relaxed. The
//! invariant a live `{"cmd":"stats"}` reply rests on is that the
//! buckets account for at least every published record — a collector
//! can over-read (racing increments it never Acquired), never
//! under-read. The positive model lets the checker try every
//! interleaving of a writer/collector pair; the mutant downgrades the
//! count publication to `Relaxed` and the checker must find the
//! schedule where the Acquire handshake is satisfied but the bucket
//! store is not yet visible — a live quantile computed from a record
//! that is not there.
#![cfg(fun3d_check)]

use fun3d_check::shim::{spin_hint, AtomicU64, Ordering};
use fun3d_check::{explore, thread, Config, FailureKind};
use fun3d_util::telemetry::metrics::HistShard;
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        max_threads: 4,
        preemption_bound: Some(2),
        max_schedules: 400_000,
        history: 3,
    }
}

#[test]
fn concurrent_read_never_undercounts_published_records() {
    // Writer records into two buckets while the collector reads
    // concurrently; afterwards a quiescent (join-ordered) read checks
    // the totals exactly. Mid-flight, whatever count the collector
    // Acquired must already be covered by the bucket sums it then
    // loads: `sum(buckets) >= count` is what makes a snapshot's
    // quantile ranks real records rather than speculation.
    let report = explore(&cfg(), || {
        let shard = Arc::new(HistShard::with_buckets(2));
        let s2 = Arc::clone(&shard);
        let writer = thread::spawn(move || {
            s2.record_bucket(0);
            s2.record_bucket(1);
            s2.record_bucket(0);
        });
        let (count, buckets) = shard.read();
        let total: u64 = buckets.iter().sum();
        assert!(
            total >= count,
            "collector undercounted: count {count}, buckets sum {total}"
        );
        assert!(count <= 3 && total <= 3);
        writer.join();
        let (count, buckets) = shard.read();
        assert_eq!(count, 3);
        assert_eq!(buckets, vec![2, 1]);
    });
    eprintln!(
        "explored {} schedules (exhaustive: {})",
        report.schedules, report.exhaustive
    );
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhaustive, "budget too small: {}", report.schedules);
    assert!(report.schedules >= 2);
}

#[test]
fn two_collectors_agree_with_one_writer() {
    // The stats endpoint and the metrics socket can snapshot the same
    // shard at once: two concurrent readers, one writer. Each reader
    // independently must see buckets covering its Acquired count.
    let report = explore(&cfg(), || {
        let shard = Arc::new(HistShard::with_buckets(1));
        let s2 = Arc::clone(&shard);
        let writer = thread::spawn(move || {
            s2.record_bucket(0);
            s2.record_bucket(0);
        });
        let s3 = Arc::clone(&shard);
        let reader = thread::spawn(move || {
            let (count, buckets) = s3.read();
            assert!(buckets[0] >= count, "reader 2 undercounted");
        });
        let (count, buckets) = shard.read();
        assert!(buckets[0] >= count, "reader 1 undercounted");
        writer.join();
        reader.join();
        let (count, buckets) = shard.read();
        assert_eq!((count, buckets[0]), (2, 2));
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhaustive, "budget too small: {}", report.schedules);
}

#[test]
fn relaxed_count_publication_is_caught() {
    // Mutant skeleton of `HistShard::record` with the count increment
    // downgraded to Relaxed: one bucket word stands in for the 2432.
    // The checker must find the schedule where the collector's Acquire
    // count load observes the increment but the relaxed bucket store
    // is not yet visible — the undercount the Release edge forbids.
    let report = explore(&cfg(), || {
        let bucket = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (b2, c2) = (Arc::clone(&bucket), Arc::clone(&count));
        let writer = thread::spawn(move || {
            b2.fetch_add(1, Ordering::Relaxed);
            c2.fetch_add(1, Ordering::Relaxed); // BUG: record() uses Release
        });
        while count.load(Ordering::Acquire) != 1 {
            spin_hint();
        }
        let b = bucket.load(Ordering::Relaxed);
        assert!(b >= 1, "collector saw published count without its record");
        writer.join();
    });
    let f = report.failure.expect("checker must catch the relaxed count");
    assert_eq!(f.kind, FailureKind::Panic, "{}", f.message);
    assert!(!f.schedule.is_empty());
}
