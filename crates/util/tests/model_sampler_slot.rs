//! Model check for the sampler's per-thread span-slot seqlock. Compiled
//! only under `--cfg fun3d_check`, where the slot's atomics are
//! fun3d-check's tracked types.
//!
//! The slot's soundness claim mirrors the span ring's: `try_read`
//! reconstructs `&'static str` names from raw pointer/length pairs read
//! out of atomics, and the only thing standing between that and
//! undefined behaviour is the sequence validation (a snapshot is
//! surfaced only if the re-read proves no writer update overlapped the
//! copy). The positive model lets the checker try every interleaving of
//! a push/push/pop writer against a concurrent sampler read and asserts
//! every surfaced snapshot is a *legal prefix* of the writer's history;
//! the mutant downgrades the frame publication to `Relaxed` and the
//! checker must find the schedule where the reader admits a torn
//! (ptr, len) pair.
#![cfg(fun3d_check)]

use fun3d_check::shim::{spin_hint, AtomicU64, Ordering};
use fun3d_check::{explore, thread, Config, FailureKind};
use fun3d_util::telemetry::sampler::SpanSlot;
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        max_threads: 4,
        preemption_bound: Some(2),
        max_schedules: 400_000,
        history: 3,
    }
}

#[test]
fn concurrent_read_sees_only_legal_stack_prefixes() {
    // Writer: push "a", push "bb", pop — the slot's published state
    // moves [] → ["a"] → ["a","bb"] → ["a"]. A concurrent `try_read`
    // must only ever surface one of those exact states; anything else
    // (a name that is neither "a" nor "bb", a ["bb"] orphan, a stale
    // frame beyond the published depth) means the validation admitted a
    // torn snapshot — and the str reconstruction it guards would be
    // undefined behaviour in production. A quiescent (join-ordered)
    // read then checks the final state exactly.
    let report = explore(&cfg(), || {
        let slot = Arc::new(SpanSlot::new());
        let s2 = Arc::clone(&slot);
        let writer = thread::spawn(move || {
            s2.push("a");
            s2.push("bb");
            s2.pop();
        });
        let mut path: Vec<&'static str> = Vec::new();
        if let Some(depth) = slot.try_read(&mut path) {
            assert_eq!(depth as usize, path.len(), "depth/frames mismatch");
            let legal: [&[&str]; 3] = [&[], &["a"], &["a", "bb"]];
            assert!(
                legal.iter().any(|l| *l == path.as_slice()),
                "torn snapshot surfaced: {path:?}"
            );
        }
        writer.join();
        // Join-ordered read: the writer finished at depth 1, path ["a"].
        let depth = slot.try_read(&mut path).expect("quiescent read cannot miss");
        assert_eq!(depth, 1);
        assert_eq!(path, ["a"]);
    });
    // Schedule count quoted in EXPERIMENTS.md; visible with --nocapture.
    eprintln!("explored {} schedules (exhaustive: {})", report.schedules, report.exhaustive);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhaustive, "budget too small: {}", report.schedules);
    assert!(report.schedules >= 2);
}

#[test]
fn relaxed_seq_publication_is_caught() {
    // Mutant skeleton of `SpanSlot::push` with the end-of-update seq
    // store — the publication edge — downgraded to Relaxed. A reader
    // whose first seq read observes the even value then no longer
    // synchronizes with the update's Relaxed payload stores, so its
    // payload loads may return stale words from an older update while
    // the s1 == s2 validation still passes: the seqlock admits a torn
    // (ptr, len) pair. The payload uses plain u64 pairs instead of str
    // parts so the bug manifests as a caught assertion, not as actual
    // undefined behaviour inside the test.
    let report = explore(&cfg(), || {
        let seq = Arc::new(AtomicU64::new(0));
        let frame = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
        let (q2, f2) = (Arc::clone(&seq), Arc::clone(&frame));
        let writer = thread::spawn(move || {
            q2.store(1, Ordering::Release);
            f2[0].store(21, Ordering::Relaxed);
            f2[1].store(42, Ordering::Relaxed);
            q2.store(2, Ordering::Relaxed); // BUG: SpanSlot::push uses Release
        });
        // A bounded seqlock read, exactly as `try_read` does it.
        for _ in 0..8 {
            let s1 = seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                spin_hint();
                continue;
            }
            let a = frame[0].load(Ordering::Relaxed);
            let b = frame[1].load(Ordering::Relaxed);
            let s2 = seq.load(Ordering::Acquire);
            if s2 != s1 {
                spin_hint();
                continue;
            }
            assert!(
                (a, b) == (0, 0) || (a, b) == (21, 42),
                "validated snapshot is torn: ({a}, {b})"
            );
            break;
        }
        writer.join();
    });
    let f = report.failure.expect("checker must catch the relaxed seq publication");
    assert_eq!(f.kind, FailureKind::Panic, "{}", f.message);
    assert!(!f.schedule.is_empty());
}
