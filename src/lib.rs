//! `fun3d-repro` — umbrella crate of the IPDPS 2015 PETSc-FUN3D
//! shared-memory-optimization reproduction.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the implementation
//! lives in the `crates/*` members, re-exported here for convenience:
//!
//! ```no_run
//! use fun3d_repro::prelude::*;
//!
//! let mut mesh = MeshPreset::Small.build();
//! Fun3dApp::rcm_reorder(&mut mesh);
//! let mut app = Fun3dApp::new(mesh, FlowConditions::default(), OptConfig::optimized(2));
//! let (_state, stats) = app.run(&PtcConfig::default());
//! assert!(stats.converged);
//! ```

pub use fun3d_cluster as cluster;
pub use fun3d_core as core;
pub use fun3d_machine as machine;
pub use fun3d_mesh as mesh;
pub use fun3d_partition as partition;
pub use fun3d_simd as simd;
pub use fun3d_solver as solver;
pub use fun3d_sparse as sparse;
pub use fun3d_threads as threads;
pub use fun3d_util as util;

/// The handful of types most programs start from.
pub mod prelude {
    pub use fun3d_core::{Fun3dApp, FlowConditions, OptConfig};
    pub use fun3d_mesh::generator::MeshPreset;
    pub use fun3d_solver::ptc::PtcConfig;
}
